package fcat

import (
	"errors"
	"testing"
	"time"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

func env(seed uint64, tags int, cfg channel.AbstractConfig) *protocol.Env {
	r := rng.New(seed)
	return &protocol.Env{
		RNG:     r,
		Tags:    tagid.Population(r, tags),
		Channel: channel.NewAbstract(cfg, r),
		Timing:  air.ICode(),
		TxModel: protocol.TxBinomial,
	}
}

func mustRun(t *testing.T, cfg Config, e *protocol.Env) protocol.Metrics {
	t.Helper()
	m, err := New(cfg).Run(e)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestName(t *testing.T) {
	if got := New(Config{Lambda: 4}).Name(); got != "FCAT-4" {
		t.Errorf("Name = %q", got)
	}
}

func TestDefaults(t *testing.T) {
	p := New(Config{})
	if p.cfg.Lambda != 2 || p.cfg.FrameSize != 30 {
		t.Fatalf("defaults: %+v", p.cfg)
	}
	if p.cfg.Omega < 1.41 || p.cfg.Omega > 1.42 {
		t.Fatalf("default omega %v", p.cfg.Omega)
	}
}

func TestEstimatorString(t *testing.T) {
	if EstimatorExact.String() != "exact" ||
		EstimatorClosedForm.String() != "closed-form" ||
		EstimatorEmpty.String() != "empty" {
		t.Fatal("estimator names wrong")
	}
}

func TestIdentifiesEveryTag(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 100, 2000} {
		m := mustRun(t, Config{Lambda: 2}, env(uint64(n)+1, n, channel.AbstractConfig{Lambda: 2}))
		if m.Identified() != n {
			t.Fatalf("N=%d: identified %d", n, m.Identified())
		}
		if m.DirectIDs+m.ResolvedIDs != n {
			t.Fatalf("N=%d: direct+resolved mismatch", n)
		}
	}
}

func TestEmptyPopulation(t *testing.T) {
	m := mustRun(t, Config{Lambda: 2}, env(2, 0, channel.AbstractConfig{Lambda: 2}))
	if m.Identified() != 0 {
		t.Fatal("identified tags in an empty field")
	}
	if m.TotalSlots() > 4 {
		t.Fatalf("%d slots to discover an empty field", m.TotalSlots())
	}
}

func TestSlotEfficiencyNearTheory(t *testing.T) {
	// At lambda=2 each slot yields an ID with probability ~0.5869, so a
	// well-tuned run needs ~N/0.5869 slots; allow 10% overhead for
	// bootstrap, estimation noise and the tail.
	const n = 5000
	m := mustRun(t, Config{Lambda: 2}, env(3, n, channel.AbstractConfig{Lambda: 2}))
	ideal := float64(n) / 0.5869
	if got := float64(m.TotalSlots()); got > ideal*1.10 {
		t.Fatalf("used %v slots, ideal %v", got, ideal)
	}
}

func TestPaperSlotsUnderTwiceN(t *testing.T) {
	// Section V-A: "the number of slots required never exceeds 2N".
	const n = 3000
	m := mustRun(t, Config{Lambda: 2}, env(4, n, channel.AbstractConfig{Lambda: 2}))
	if m.TotalSlots() > 2*n {
		t.Fatalf("%d slots exceeds 2N = %d", m.TotalSlots(), 2*n)
	}
}

func TestAllEstimatorsComplete(t *testing.T) {
	for _, est := range []Estimator{EstimatorExact, EstimatorClosedForm, EstimatorEmpty} {
		m := mustRun(t, Config{Lambda: 2, Estimator: est},
			env(5, 1500, channel.AbstractConfig{Lambda: 2}))
		if m.Identified() != 1500 {
			t.Fatalf("estimator %v identified %d of 1500", est, m.Identified())
		}
	}
}

func TestLastFrameOnlyCompletes(t *testing.T) {
	m := mustRun(t, Config{Lambda: 2, LastFrameOnly: true},
		env(6, 1000, channel.AbstractConfig{Lambda: 2}))
	if m.Identified() != 1000 {
		t.Fatalf("identified %d", m.Identified())
	}
}

func TestOracleBeatsEstimator(t *testing.T) {
	const n = 2000
	est := mustRun(t, Config{Lambda: 2}, env(7, n, channel.AbstractConfig{Lambda: 2}))
	ora := mustRun(t, Config{Lambda: 2, OracleEstimate: true}, env(7, n, channel.AbstractConfig{Lambda: 2}))
	if ora.Identified() != n || est.Identified() != n {
		t.Fatal("incomplete run")
	}
	// Within per-run noise the estimator can edge ahead on a lucky seed;
	// the oracle must only not lose materially.
	if ora.Throughput() < est.Throughput()*0.98 {
		t.Fatalf("oracle (%v) should not lose to the estimator (%v)", ora.Throughput(), est.Throughput())
	}
}

func TestInitialEstimateSkipsBootstrap(t *testing.T) {
	// With a perfect initial estimate, the run should be as lean as the
	// bootstrap run or leaner.
	const n = 1000
	boot := mustRun(t, Config{Lambda: 2}, env(8, n, channel.AbstractConfig{Lambda: 2}))
	seeded := mustRun(t, Config{Lambda: 2, InitialEstimate: n}, env(8, n, channel.AbstractConfig{Lambda: 2}))
	if seeded.Identified() != n {
		t.Fatal("seeded run incomplete")
	}
	if seeded.TotalSlots() > boot.TotalSlots()+60 {
		t.Fatalf("seeded run used %d slots vs bootstrap %d", seeded.TotalSlots(), boot.TotalSlots())
	}
}

func TestInitialEstimateWayOff(t *testing.T) {
	// A wildly wrong seed estimate must still converge and complete.
	for _, initial := range []float64{1, 1e6} {
		m := mustRun(t, Config{Lambda: 2, InitialEstimate: initial},
			env(9, 800, channel.AbstractConfig{Lambda: 2}))
		if m.Identified() != 800 {
			t.Fatalf("initial=%v: identified %d of 800", initial, m.Identified())
		}
	}
}

func TestFramesCounted(t *testing.T) {
	m := mustRun(t, Config{Lambda: 2}, env(10, 1000, channel.AbstractConfig{Lambda: 2}))
	if m.Frames == 0 {
		t.Fatal("no frames recorded")
	}
	// Slots per frame is f=30 (plus bootstrap/probe slots).
	if m.TotalSlots() < m.Frames*30 {
		t.Fatalf("slots %d < frames*30 = %d", m.TotalSlots(), m.Frames*30)
	}
}

func TestLambda3And4ResolveMore(t *testing.T) {
	const n = 3000
	resolved := make(map[int]int)
	for _, lambda := range []int{2, 3, 4} {
		m := mustRun(t, Config{Lambda: lambda}, env(11, n, channel.AbstractConfig{Lambda: lambda}))
		if m.Identified() != n {
			t.Fatalf("lambda=%d incomplete", lambda)
		}
		resolved[lambda] = m.ResolvedIDs
	}
	if !(resolved[2] < resolved[3] && resolved[3] < resolved[4]) {
		t.Fatalf("resolution counts not increasing with lambda: %v", resolved)
	}
}

func TestResolvedFractionsMatchPaper(t *testing.T) {
	// Table III: about 40% / 57-60% / 68-71% of IDs come from collision
	// records for lambda = 2 / 3 / 4.
	const n = 5000
	want := map[int][2]float64{2: {0.35, 0.50}, 3: {0.52, 0.65}, 4: {0.62, 0.75}}
	for lambda, bounds := range want {
		m := mustRun(t, Config{Lambda: lambda}, env(12, n, channel.AbstractConfig{Lambda: lambda}))
		frac := float64(m.ResolvedIDs) / float64(n)
		if frac < bounds[0] || frac > bounds[1] {
			t.Errorf("lambda=%d resolved fraction %.3f outside [%v, %v]", lambda, frac, bounds[0], bounds[1])
		}
	}
}

func TestHashModel(t *testing.T) {
	e := env(13, 400, channel.AbstractConfig{Lambda: 2})
	e.TxModel = protocol.TxHash
	m := mustRun(t, Config{Lambda: 2}, e)
	if m.Identified() != 400 {
		t.Fatalf("hash model identified %d of 400", m.Identified())
	}
}

func TestUnresolvableChannelCompletes(t *testing.T) {
	m := mustRun(t, Config{Lambda: 2},
		env(14, 600, channel.AbstractConfig{Lambda: 2, PUnresolvable: 1}))
	if m.Identified() != 600 || m.ResolvedIDs != 0 {
		t.Fatalf("identified=%d resolved=%d", m.Identified(), m.ResolvedIDs)
	}
}

func TestCorruptionRetries(t *testing.T) {
	m := mustRun(t, Config{Lambda: 2},
		env(15, 400, channel.AbstractConfig{Lambda: 2, PCorruptSingleton: 0.2}))
	if m.Identified() != 400 {
		t.Fatalf("identified %d of 400", m.Identified())
	}
}

func TestHopelessChannelReturnsErrNoProgress(t *testing.T) {
	// Every singleton corrupted: no tag can ever be identified.
	e := env(16, 50, channel.AbstractConfig{Lambda: 2, PCorruptSingleton: 1})
	e.MaxSlots = 2000
	_, err := New(Config{Lambda: 2}).Run(e)
	if !errors.Is(err, protocol.ErrNoProgress) {
		t.Fatalf("err = %v, want ErrNoProgress", err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() protocol.Metrics {
		m, err := New(Config{Lambda: 2}).Run(env(17, 700, channel.AbstractConfig{Lambda: 2}))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different metrics:\n%+v\n%+v", a, b)
	}
}

func TestCallbackSeesEveryID(t *testing.T) {
	e := env(18, 500, channel.AbstractConfig{Lambda: 2})
	seen := make(map[tagid.ID]bool)
	viaResolution := 0
	e.OnIdentified = func(id tagid.ID, via bool) {
		if seen[id] {
			t.Fatalf("ID %v reported twice", id)
		}
		seen[id] = true
		if via {
			viaResolution++
		}
	}
	m := mustRun(t, Config{Lambda: 2}, e)
	if len(seen) != 500 {
		t.Fatalf("callback saw %d IDs", len(seen))
	}
	if viaResolution != m.ResolvedIDs {
		t.Fatalf("callback resolution count %d != metrics %d", viaResolution, m.ResolvedIDs)
	}
}

func TestFrameAdvertisementsCostAir(t *testing.T) {
	m := mustRun(t, Config{Lambda: 2}, env(19, 800, channel.AbstractConfig{Lambda: 2}))
	tm := air.ICode()
	// Air time exceeds bare slots by at least one advertisement per frame
	// and one 23-bit index per resolved ID.
	floor := time.Duration(m.TotalSlots())*tm.Slot() +
		time.Duration(m.Frames)*tm.FrameAdvertisement() +
		time.Duration(m.ResolvedIDs)*tm.ResolvedIndexAck()
	if m.OnAir < floor {
		t.Fatalf("air time %v below accounting floor %v", m.OnAir, floor)
	}
	// ...but not by more than a sane margin (ads for probes/bootstrap).
	if m.OnAir > floor+time.Duration(80)*tm.Slot() {
		t.Fatalf("air time %v unreasonably above floor %v", m.OnAir, floor)
	}
}

func TestSmallFrameSizes(t *testing.T) {
	for _, f := range []int{1, 2, 5} {
		m := mustRun(t, Config{Lambda: 2, FrameSize: f},
			env(20, 300, channel.AbstractConfig{Lambda: 2}))
		if m.Identified() != 300 {
			t.Fatalf("f=%d: identified %d of 300", f, m.Identified())
		}
	}
}

func TestCustomOmegaCompletes(t *testing.T) {
	for _, w := range []float64{0.3, 1.0, 2.9} {
		m := mustRun(t, Config{Lambda: 2, Omega: w},
			env(21, 400, channel.AbstractConfig{Lambda: 2}))
		if m.Identified() != 400 {
			t.Fatalf("omega=%v: identified %d", w, m.Identified())
		}
	}
}
