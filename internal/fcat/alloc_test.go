package fcat

import (
	"testing"

	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/record"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// newAllocRun builds a session in the state Begin would, against the given env.
func newAllocRun(e *protocol.Env) *session {
	return &session{
		cfg:    New(Config{}).cfg,
		env:    e,
		m:      protocol.Metrics{Tags: len(e.Tags)},
		active: protocol.NewActiveSet(e.Tags),
		store:  record.NewStore(),
		seen:   make(map[tagid.ID]struct{}, len(e.Tags)),
		buf:    make([]tagid.ID, 0, 64),
		budget: e.SlotBudget(),
	}
}

// TestEmptySlotZeroAlloc requires the steady-state empty slot (p = 0: no
// tag reports) to be allocation-free with the tracer off, under both
// transmission models.
func TestEmptySlotZeroAlloc(t *testing.T) {
	for _, tx := range []protocol.TxModel{protocol.TxBinomial, protocol.TxHash} {
		e := env(1, 500, channel.AbstractConfig{Lambda: 2})
		e.TxModel = tx
		r := newAllocRun(e)
		for i := 0; i < 32; i++ { // warm up buffers and maps
			if _, err := r.doSlot(0); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(300, func() {
			if _, err := r.doSlot(0); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("tx=%v: empty slot allocates %v times, want 0", tx, allocs)
		}
	}
}

// TestSingletonSlotZeroAlloc requires the steady-state singleton slot to be
// allocation-free: one tag whose acknowledgements are all lost retransmits
// forever at p = 1, exercising the duplicate-discard path, the
// acknowledgement draw and the (empty) resolution cascade every slot.
func TestSingletonSlotZeroAlloc(t *testing.T) {
	for _, tx := range []protocol.TxModel{protocol.TxBinomial, protocol.TxHash} {
		e := env(2, 1, channel.AbstractConfig{Lambda: 2})
		e.TxModel = tx
		e.PAckLoss = 1
		r := newAllocRun(e)
		for i := 0; i < 32; i++ {
			kind, err := r.doSlot(1)
			if err != nil {
				t.Fatal(err)
			}
			if kind != channel.Singleton {
				t.Fatalf("warmup slot %d: kind %v, want singleton", i, kind)
			}
		}
		if r.m.Identified() != 1 {
			t.Fatalf("unexpected warmup state: %+v", r.m)
		}
		allocs := testing.AllocsPerRun(300, func() {
			if _, err := r.doSlot(1); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("tx=%v: singleton slot allocates %v times, want 0", tx, allocs)
		}
	}
}
