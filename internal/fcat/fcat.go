// Package fcat implements the Framed Collision-Aware Tag identification
// protocol, the paper's main contribution (Section V).
//
// FCAT improves SCAT on three fronts:
//
//  1. Frames: the reader advertises the report probability once per frame
//     of f slots instead of per slot, since p barely changes between
//     consecutive slots.
//  2. Cheap acknowledgements: an ID recovered from a collision record is
//     acknowledged by broadcasting the 23-bit index of the resolved slot;
//     the tag recognises a slot it transmitted in and goes quiet.
//  3. Embedded estimation: the number of participating tags is estimated
//     from the per-frame collision-slot count (Section V-C, Eq. 12),
//     removing the pre-estimation phase SCAT needs.
//
// Because no prior estimate exists, the reader bootstraps with a geometric
// probe: single slots at p = 1/2, 1/4, 1/8, ... until one does not collide,
// which locates N within a binary order of magnitude in about log2(N)
// slots; the per-frame estimator then locks on. The probe slots are
// ordinary protocol slots (their singletons and records count).
package fcat

import (
	"fmt"
	"io"
	"maps"
	"time"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/analysis"
	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/estimate"
	obsev "github.com/ancrfid/ancrfid/internal/obs"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/record"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// Estimator selects how the reader inverts per-frame slot counts into a
// population estimate.
type Estimator int

const (
	// EstimatorExact (the default) solves the paper's Eq. 12
	// self-consistently: E(n_c) from Eq. 10 is inverted for N numerically.
	// Eq. 12's omega term is omega = N_i * p_i, which contains the unknown,
	// so a faithful reader solves the implicit equation; this estimator
	// stays unbiased even when the running estimate is far from N (e.g. in
	// the tail of a read, where the approximate form overestimates and
	// starves the report probability).
	EstimatorExact Estimator = iota
	// EstimatorClosedForm evaluates Eq. 12 with the *design* omega
	// substituted for N_i*p_i — the one-shot approximation. Accurate while
	// the estimate tracks N; kept as an ablation.
	EstimatorClosedForm
	// EstimatorEmpty inverts the empty-slot count E(n_0) — the alternative
	// the paper rejects for its higher variance; kept for the ablation.
	EstimatorEmpty
)

// String returns the estimator name.
func (e Estimator) String() string {
	switch e {
	case EstimatorClosedForm:
		return "closed-form"
	case EstimatorEmpty:
		return "empty"
	default:
		return "exact"
	}
}

// Config parameterises FCAT.
type Config struct {
	// Lambda is the ANC decoder capability the protocol is tuned for; it
	// selects the default Omega and appears in the protocol name.
	Lambda int

	// Omega overrides the report-probability constant. Zero selects the
	// optimal (lambda!)^(1/lambda) (Section IV-C).
	Omega float64

	// FrameSize is f, the number of slots per frame. Zero selects the
	// paper's default of 30; Fig. 6 shows throughput is stable for f >= 10.
	FrameSize int

	// InitialEstimate seeds the reader's population estimate. Zero enables
	// the geometric bootstrap probe.
	InitialEstimate float64

	// Estimator selects the per-frame estimator (default EstimatorExact,
	// the self-consistent inversion of the paper's Eq. 12).
	Estimator Estimator

	// LastFrameOnly disables the cross-frame running average of the
	// population estimate (the paper averages; this is the ablation knob).
	LastFrameOnly bool

	// OracleEstimate gives the reader the true number of outstanding tags
	// every frame instead of the embedded estimator — the idealised
	// perfect-estimation upper bound used to measure what estimation noise
	// costs. Not a real protocol mode.
	OracleEstimate bool

	// Trace, when non-nil, receives one line per frame with the estimator
	// state (frame, p, slot mix, frame estimate, running estimate,
	// identified count) — a debugging and analysis aid.
	Trace io.Writer
}

// Protocol is a configured FCAT instance.
type Protocol struct {
	cfg Config
}

var _ protocol.Protocol = (*Protocol)(nil)

// New returns an FCAT instance; zero config fields take the paper's
// defaults (lambda = 2, optimal omega, f = 30, bootstrap probing).
func New(cfg Config) *Protocol {
	if cfg.Lambda < 1 {
		cfg.Lambda = 2
	}
	if cfg.Omega <= 0 {
		cfg.Omega = analysis.OptimalOmega(cfg.Lambda)
	}
	if cfg.FrameSize <= 0 {
		cfg.FrameSize = 30
	}
	return &Protocol{cfg: cfg}
}

// Name implements protocol.Protocol.
func (p *Protocol) Name() string { return fmt.Sprintf("FCAT-%d", p.cfg.Lambda) }

var _ protocol.SessionProtocol = (*Protocol)(nil)

// Run implements protocol.Protocol by driving a fresh session to
// completion.
func (p *Protocol) Run(env *protocol.Env) (protocol.Metrics, error) {
	return protocol.RunSession(p, env)
}

// phase is the session's position in FCAT's control flow. The batch
// execute loop of earlier revisions is unrolled into these states so the
// run can be advanced one slot at a time (protocol.Session): every state
// either performs exactly one report segment or is a slot-free transition
// folded into the step that performs the next one.
type phase int

const (
	// phInit dispatches on the config: oracle mode, a seeded estimate, or
	// the geometric bootstrap.
	phInit phase = iota
	// phBootSlot runs one bootstrap slot at the next halved probability.
	phBootSlot
	// phBootConfirm runs the p=1 probe that distinguishes a sparse field
	// from an empty one after an empty slot at p=1/2.
	phBootConfirm
	// phFrameDecide computes the report probability from the current
	// estimate and opens the next frame (or falls into phProbe when the
	// reader believes the field is exhausted).
	phFrameDecide
	// phInFrame runs the frame's next slot.
	phInFrame
	// phFrameEnd closes the frame: silent-frame check and estimator update.
	phFrameEnd
	// phProbe runs a p=1 termination probe; an empty probe proves the
	// field exhausted. A done session stays here, so further steps keep
	// monitoring the field for newly admitted tags.
	phProbe
	// phOracleDecide and phOracleFrame are the oracle-estimate analogues
	// of phFrameDecide and phInFrame (no estimator, no silent-frame
	// probing beyond the exhaustion probe).
	phOracleDecide
	phOracleFrame
)

// bootReason records why a bootstrap is running: the initial order-of-
// magnitude location, or the relocation after an answered termination
// probe.
type bootReason int

const (
	bootInitial bootReason = iota
	bootRelocate
)

// session carries the mutable state of one FCAT execution.
type session struct {
	p      *Protocol
	cfg    Config
	env    *protocol.Env
	m      protocol.Metrics
	clock  air.Clock
	active *protocol.ActiveSet
	store  *record.Store
	seen   map[tagid.ID]struct{}
	buf    []tagid.ID
	slot   uint64
	budget int

	phase   phase
	bootP   float64
	bootWhy bootReason

	estimateN float64
	tracker   estimate.Tracker

	frameP           float64
	frameJ           int
	nc, n0           int
	identifiedBefore int

	// oracleN is the true population the oracle estimator consults; Admit
	// and Revoke keep it current.
	oracleN int

	err error
}

var _ protocol.Session = (*session)(nil)

// sessionScratch is the reusable core of a session (see protocol.Scratch):
// the active set, the record store and the seen map are session-sized, so a
// campaign worker reinitialises them in place between runs instead of
// reallocating. The per-slot transmitter buffer stays per-session — its
// slice header would go stale in the scratch as the session grows it.
type sessionScratch struct {
	active *protocol.ActiveSet
	store  *record.Store
	seen   map[tagid.ID]struct{}
}

// scratchKey namespaces this protocol's state in the shared container.
const scratchKey = "fcat"

// Begin implements protocol.SessionProtocol.
func (p *Protocol) Begin(env *protocol.Env) protocol.Session {
	s := &session{
		p:       p,
		cfg:     p.cfg,
		env:     env,
		m:       protocol.Metrics{Tags: len(env.Tags)},
		buf:     make([]tagid.ID, 0, 64),
		budget:  env.SlotBudget(),
		oracleN: len(env.Tags),
	}
	if sc, _ := env.Scratch.Get(scratchKey).(*sessionScratch); sc != nil {
		sc.active.ResetTags(env.Tags)
		sc.store.Reset()
		clear(sc.seen)
		s.active, s.store, s.seen = sc.active, sc.store, sc.seen
	} else {
		s.active = protocol.NewActiveSet(env.Tags)
		s.store = record.NewStore()
		s.seen = make(map[tagid.ID]struct{}, len(env.Tags))
		env.Scratch.Put(scratchKey, &sessionScratch{active: s.active, store: s.store, seen: s.seen})
	}
	s.store.Tracer = env.Tracer
	s.store.Quarantine = env.Hardened()
	if env.Stream {
		s.active.SetStream(true)
		if rel, ok := env.Channel.(channel.Releaser); ok {
			s.store.SetReleaser(rel)
		}
	}
	env.Clock = &s.clock
	env.TraceRunStart(p.Name())
	return s
}

// Protocol implements protocol.Session.
func (r *session) Protocol() string { return r.p.Name() }

// fail records a terminal error.
func (r *session) fail(err error) (bool, error) {
	r.err = err
	return false, err
}

// Step implements protocol.Session: it folds slot-free transitions until
// one report segment has been run.
func (r *session) Step() (bool, error) {
	if r.err != nil {
		return false, r.err
	}
	for {
		switch r.phase {
		case phInit:
			if r.cfg.OracleEstimate {
				r.phase = phOracleDecide
				continue
			}
			if r.cfg.InitialEstimate > 0 {
				r.estimateN = r.cfg.InitialEstimate
				r.phase = phFrameDecide
				continue
			}
			r.bootWhy = bootInitial
			r.bootP = 1
			r.phase = phBootSlot
			continue

		case phBootSlot:
			r.bootP /= 2
			kind, err := r.doSlotAdvertised(r.bootP)
			if err != nil {
				return r.fail(err)
			}
			if kind == channel.Collision || kind == channel.Captured {
				if r.bootP < 1e-9 {
					return r.fail(protocol.ErrNoProgress)
				}
				return false, nil // next bootstrap slot at bootP/2
			}
			// Around the first non-collision, N*p has dropped to order 1,
			// so N is of order 1/p.
			if kind == channel.Empty && r.bootP == 0.5 {
				// Nothing at p=1/2: either very few tags or none. Confirm
				// with a p=1 probe.
				r.phase = phBootConfirm
				return false, nil
			}
			return r.finishBootstrap(1 / r.bootP)

		case phBootConfirm:
			kind, err := r.doSlotAdvertised(1)
			if err != nil {
				return r.fail(err)
			}
			if kind == channel.Empty {
				return r.finishBootstrap(0)
			}
			return r.finishBootstrap(1 / r.bootP)

		case phFrameDecide:
			remaining := r.estimateN - float64(r.m.Identified())
			if remaining < 0.5 {
				// The reader believes it has read everything: probe with
				// p = 1.
				r.phase = phProbe
				continue
			}
			p := r.cfg.Omega / remaining
			if p > 1 {
				p = 1
			}
			r.frameP = p
			r.clock.Add(r.env.Timing.FrameAdvertisement())
			r.env.TraceFrame(obsev.FrameEvent{Seq: int(r.slot), Frame: r.m.Frames + 1, Size: r.cfg.FrameSize, P: p})
			r.identifiedBefore = r.m.Identified()
			r.nc, r.n0 = 0, 0
			r.frameJ = 0
			r.phase = phInFrame
			continue

		case phInFrame:
			kind, err := r.doSlot(r.frameP)
			if err != nil {
				return r.fail(err)
			}
			switch kind {
			case channel.Empty:
				r.n0++
			case channel.Collision, channel.Captured:
				// A captured slot was still a multi-tag slot on the air, so
				// the collision-count estimator counts it as one.
				r.nc++
			}
			r.frameJ++
			if r.frameJ == r.cfg.FrameSize {
				r.phase = phFrameEnd
			}
			return false, nil

		case phFrameEnd:
			r.m.Frames++
			if r.n0 == r.cfg.FrameSize {
				// A completely silent frame: either the field is exhausted
				// or the estimate overshoots so far that nobody reports. A
				// p=1 probe distinguishes the two immediately instead of
				// waiting for the averaged estimate to drift down; if it is
				// answered, the outstanding count is relocated with a fresh
				// bootstrap.
				r.phase = phProbe
				continue
			}
			r.updateEstimate()
			continue

		case phProbe:
			kind, err := r.doSlotAdvertised(1)
			if err != nil {
				return r.fail(err)
			}
			if kind == channel.Empty {
				// The field is exhausted. Staying in phProbe keeps the
				// session monitoring: further steps re-probe, and an
				// answered probe resumes identification.
				return true, nil
			}
			if r.cfg.OracleEstimate {
				r.phase = phOracleDecide
				return false, nil
			}
			// The probe was answered, so tags remain but the stale average
			// says otherwise. Relocate the outstanding count with a short
			// geometric probe (log2 of the deficit in slots) instead of
			// guessing, and drop the stale average.
			r.bootWhy = bootRelocate
			r.bootP = 1
			r.phase = phBootSlot
			return false, nil

		case phOracleDecide:
			remaining := r.oracleN - r.m.Identified()
			if remaining <= 0 {
				r.phase = phProbe
				continue
			}
			p := r.cfg.Omega / float64(remaining)
			if p > 1 {
				p = 1
			}
			r.frameP = p
			r.clock.Add(r.env.Timing.FrameAdvertisement())
			r.env.TraceFrame(obsev.FrameEvent{Seq: int(r.slot), Frame: r.m.Frames + 1, Size: r.cfg.FrameSize, P: p})
			r.frameJ = 0
			r.phase = phOracleFrame
			continue

		case phOracleFrame:
			if _, err := r.doSlot(r.frameP); err != nil {
				return r.fail(err)
			}
			r.frameJ++
			if r.frameJ == r.cfg.FrameSize {
				r.m.Frames++
				r.phase = phOracleDecide
			}
			return false, nil

		default:
			return r.fail(fmt.Errorf("fcat: corrupt session phase %d", r.phase))
		}
	}
}

// finishBootstrap consumes the bootstrap's estimate. For the initial
// bootstrap a zero estimate proves the field empty and terminates the run;
// a relocation folds the estimate on top of the identified count and drops
// the stale cross-frame average.
func (r *session) finishBootstrap(est float64) (bool, error) {
	if r.bootWhy == bootInitial {
		if est <= 0 { // bootstrap proved the field empty
			r.phase = phProbe
			return true, nil
		}
		r.estimateN = est
		r.env.TraceEstimate(obsev.EstimateEvent{Estimate: est})
		r.phase = phFrameDecide
		return false, nil
	}
	r.estimateN = float64(r.m.Identified()) + est
	r.tracker = estimate.Tracker{}
	r.env.TraceEstimate(obsev.EstimateEvent{
		Frame: r.m.Frames, Estimate: r.estimateN, Identified: r.m.Identified(),
	})
	r.phase = phFrameDecide
	return false, nil
}

// updateEstimate folds a completed frame's slot counts into the population
// estimate (Section V-C) and opens the next frame decision.
func (r *session) updateEstimate() {
	f := r.cfg.FrameSize
	frameEst, ok := r.estimateFrame(r.nc, r.n0, f-r.n0-r.nc, r.frameP)
	if !ok {
		// Every slot collided: the believed deficit is far too low. Grow
		// the deficit geometrically (doubling the total would double-count
		// the already-identified tags and overshoot).
		deficit := r.estimateN - float64(r.m.Identified())
		if deficit < 1 {
			deficit = 1
		}
		r.estimateN = float64(r.m.Identified()) + 2*deficit + 1
		r.env.TraceEstimate(obsev.EstimateEvent{
			Frame: r.m.Frames, Estimate: r.estimateN, Identified: r.m.Identified(),
		})
		r.phase = phFrameDecide
		return
	}
	// Per-frame estimate of the total population: the frame's estimate of
	// participants plus the tags identified before the frame began.
	total := frameEst + float64(r.identifiedBefore)
	if r.cfg.Trace != nil {
		fmt.Fprintf(r.cfg.Trace, "frame=%d p=%.5f nc=%d n0=%d frameEst=%.0f total=%.0f est=%.0f identified=%d\n",
			r.m.Frames, r.frameP, r.nc, r.n0, frameEst, total, r.estimateN, r.m.Identified())
	}
	if r.cfg.LastFrameOnly {
		r.estimateN = total
	} else {
		// Plain cross-frame average, as the paper prescribes.
		// (Inverse-variance weighting by p^2 was evaluated and rejected:
		// it concentrates weight on tail frames, whose small-count
		// estimates are individually biased, and measures worse.)
		r.tracker.Add(total)
		r.estimateN, _ = r.tracker.Mean()
	}
	r.env.TraceEstimate(obsev.EstimateEvent{
		Frame:      r.m.Frames,
		Estimate:   r.estimateN,
		FrameEst:   total,
		Identified: r.m.Identified(),
	})
	r.phase = phFrameDecide
}

// Admit implements protocol.Session. The embedded estimator re-locates the
// grown population on its own (all-collided frames double the believed
// deficit; answered termination probes trigger a fresh bootstrap), so only
// the population bookkeeping changes here.
func (r *session) Admit(ids []tagid.ID) {
	for _, id := range ids {
		if _, identified := r.seen[id]; identified {
			continue
		}
		if r.active.Add(id) {
			r.m.Tags++
			r.oracleN++
			r.store.Readmit(id)
		}
	}
}

// Revoke implements protocol.Session. A departed unidentified tag lowers
// the running estimate by one (the silent-frame probe handles bulk
// departures) and invalidates its pending record memberships.
func (r *session) Revoke(ids []tagid.ID) {
	for _, id := range ids {
		if !r.active.Remove(id) {
			continue
		}
		if _, identified := r.seen[id]; !identified {
			r.store.Revoke(id)
			r.oracleN--
			if r.estimateN > float64(r.m.Identified()) {
				r.estimateN--
			}
		}
	}
}

// Metrics implements protocol.Session.
func (r *session) Metrics() protocol.Metrics {
	m := r.m
	m.OnAir = r.clock.Elapsed()
	return m
}

// Elapsed implements protocol.Session.
func (r *session) Elapsed() time.Duration { return r.clock.Elapsed() }

// Outstanding implements protocol.Session.
func (r *session) Outstanding() int { return r.active.Len() }

// checkpoint is a deep copy of an FCAT session's state.
type checkpoint struct {
	name   string
	m      protocol.Metrics
	clock  air.Clock
	active *protocol.ActiveSet
	store  *record.Store
	seen   map[tagid.ID]struct{}
	slot   uint64
	budget int

	phase   phase
	bootP   float64
	bootWhy bootReason

	estimateN float64
	tracker   estimate.Tracker

	frameP           float64
	frameJ           int
	nc, n0           int
	identifiedBefore int
	oracleN          int

	err error

	rng       rng.Source
	chanState any
}

// Protocol implements protocol.Checkpoint.
func (c *checkpoint) Protocol() string { return c.name }

// Snapshot implements protocol.Session.
func (r *session) Snapshot() (protocol.Checkpoint, error) {
	store, err := r.store.Clone()
	if err != nil {
		return nil, err
	}
	cp := &checkpoint{
		name:             r.p.Name(),
		m:                r.m,
		clock:            r.clock,
		active:           r.active.Clone(),
		store:            store,
		seen:             maps.Clone(r.seen),
		slot:             r.slot,
		budget:           r.budget,
		phase:            r.phase,
		bootP:            r.bootP,
		bootWhy:          r.bootWhy,
		estimateN:        r.estimateN,
		tracker:          r.tracker,
		frameP:           r.frameP,
		frameJ:           r.frameJ,
		nc:               r.nc,
		n0:               r.n0,
		identifiedBefore: r.identifiedBefore,
		oracleN:          r.oracleN,
		err:              r.err,
		rng:              *r.env.RNG,
	}
	if st, ok := r.env.Channel.(channel.Stateful); ok {
		cp.chanState = st.SnapshotState()
	}
	return cp, nil
}

// Restore implements protocol.Session.
func (r *session) Restore(c protocol.Checkpoint) error {
	cp, ok := c.(*checkpoint)
	if !ok || cp.name != r.p.Name() {
		return protocol.ErrCheckpointMismatch
	}
	store, err := cp.store.Clone()
	if err != nil {
		return err
	}
	r.m = cp.m
	r.clock = cp.clock
	r.active = cp.active.Clone()
	r.store = store
	r.seen = maps.Clone(cp.seen)
	r.slot = cp.slot
	r.budget = cp.budget
	r.phase = cp.phase
	r.bootP = cp.bootP
	r.bootWhy = cp.bootWhy
	r.estimateN = cp.estimateN
	r.tracker = cp.tracker
	r.frameP = cp.frameP
	r.frameJ = cp.frameJ
	r.nc = cp.nc
	r.n0 = cp.n0
	r.identifiedBefore = cp.identifiedBefore
	r.oracleN = cp.oracleN
	r.err = cp.err
	*r.env.RNG = cp.rng
	if cp.chanState != nil {
		r.env.Channel.(channel.Stateful).RestoreState(cp.chanState)
	}
	return nil
}

// estimateFrame inverts the configured per-frame estimator.
func (r *session) estimateFrame(nc, n0, n1 int, p float64) (float64, bool) {
	if nc == 0 && r.cfg.Estimator != EstimatorEmpty {
		// A collision-free frame carries no collision information; in the
		// tail of a read this is the common case. Invert the singleton
		// expectation on its sparse branch instead: E(n1) ~= f*N*p for
		// small N*p, so N ~= n1/(f*p).
		return float64(n1) / (float64(r.cfg.FrameSize) * p), true
	}
	switch r.cfg.Estimator {
	case EstimatorClosedForm:
		return estimate.ClosedForm(nc, r.cfg.FrameSize, p, r.cfg.Omega)
	case EstimatorEmpty:
		return estimate.FromEmpty(n0, r.cfg.FrameSize, p)
	default:
		return estimate.Exact(nc, r.cfg.FrameSize, p)
	}
}

// doSlotAdvertised runs one slot preceded by its own advertisement (used
// by bootstrap and termination probes, which change p for a single slot).
func (r *session) doSlotAdvertised(p float64) (channel.Kind, error) {
	r.clock.Add(r.env.Timing.SlotAdvertisement())
	r.env.TraceAdvert(obsev.AdvertEvent{Seq: int(r.slot), P: p})
	return r.doSlot(p)
}

// doSlot executes one report+acknowledgement slot at report probability p.
func (r *session) doSlot(p float64) (channel.Kind, error) {
	if int(r.slot) >= r.budget {
		return 0, protocol.ErrNoProgress
	}
	slot := r.slot
	r.slot++
	r.clock.Add(r.env.Timing.Slot())

	r.buf = r.active.Transmitters(r.env.RNG, r.env.TxModel, slot, p, r.buf)
	obs := r.env.Channel.Observe(r.buf)
	switch obs.Kind {
	case channel.Empty:
		r.m.EmptySlots++
	case channel.Singleton:
		r.m.SingletonSlots++
		r.countDirect(obs.ID)
		delivered := r.env.AckDelivered()
		r.env.TraceAck(obsev.AckEvent{
			Seq: int(slot), ID: obs.ID, Kind: obsev.AckDirect, Delivered: delivered,
		})
		if delivered {
			r.active.Remove(obs.ID)
		}
		for _, res := range r.store.OnIdentified(obs.ID) {
			r.countResolved(res)
		}
	case channel.Collision:
		r.m.CollisionSlots++
		// Storing the record can resolve it immediately when all but one
		// member are known retransmitters (lost-acknowledgement recovery).
		for _, res := range r.store.Add(slot, obs.Mix, r.buf) {
			r.countResolved(res)
		}
	case channel.Captured:
		// Capture effect: the strongest constituent decoded through the
		// collision. The slot still counts as a collision (it occupied the
		// air as one), the captured ID is acknowledged like a singleton
		// decode, and the recording joins the store as a residual — Add
		// subtracts the now-known captured tag, so a 2-collision capture
		// resolves its partner on the spot.
		r.m.CollisionSlots++
		r.countDirect(obs.ID)
		delivered := r.env.AckDelivered()
		r.env.TraceAck(obsev.AckEvent{
			Seq: int(slot), ID: obs.ID, Kind: obsev.AckDirect, Delivered: delivered,
		})
		if delivered {
			r.active.Remove(obs.ID)
		}
		for _, res := range r.store.OnIdentified(obs.ID) {
			r.countResolved(res)
		}
		for _, res := range r.store.Add(slot, obs.Mix, r.buf) {
			r.countResolved(res)
		}
	}
	r.m.TagTransmissions += len(r.buf)
	r.env.NotifySlot(protocol.SlotEvent{
		Seq:          r.m.TotalSlots() - 1,
		Kind:         obs.Kind,
		Transmitters: len(r.buf),
		Identified:   r.m.Identified(),
	})
	return obs.Kind, nil
}

// countDirect records a first-time identification from a singleton slot;
// duplicate reads of a tag whose acknowledgement was lost are discarded
// (Section IV-E).
func (r *session) countDirect(id tagid.ID) {
	if _, dup := r.seen[id]; dup {
		return
	}
	r.seen[id] = struct{}{}
	r.m.DirectIDs++
	r.env.NotifyIdentified(id, false)
}

// countResolved records an ID recovered from a collision record and
// broadcasts the resolved slot's 23-bit index so the tag stops
// (Section V-A); the tag stays active if that acknowledgement is lost.
func (r *session) countResolved(res record.Resolved) {
	if _, dup := r.seen[res.ID]; !dup {
		r.seen[res.ID] = struct{}{}
		r.m.ResolvedIDs++
		r.env.NotifyIdentified(res.ID, true)
	}
	r.clock.Add(r.env.Timing.ResolvedIndexAck())
	delivered := r.env.AckDelivered()
	r.env.TraceAck(obsev.AckEvent{
		Seq: int(r.slot) - 1, ID: res.ID, Kind: obsev.AckResolvedIndex, Delivered: delivered,
	})
	if delivered {
		r.active.Remove(res.ID)
	}
}
