// Package fcat implements the Framed Collision-Aware Tag identification
// protocol, the paper's main contribution (Section V).
//
// FCAT improves SCAT on three fronts:
//
//  1. Frames: the reader advertises the report probability once per frame
//     of f slots instead of per slot, since p barely changes between
//     consecutive slots.
//  2. Cheap acknowledgements: an ID recovered from a collision record is
//     acknowledged by broadcasting the 23-bit index of the resolved slot;
//     the tag recognises a slot it transmitted in and goes quiet.
//  3. Embedded estimation: the number of participating tags is estimated
//     from the per-frame collision-slot count (Section V-C, Eq. 12),
//     removing the pre-estimation phase SCAT needs.
//
// Because no prior estimate exists, the reader bootstraps with a geometric
// probe: single slots at p = 1/2, 1/4, 1/8, ... until one does not collide,
// which locates N within a binary order of magnitude in about log2(N)
// slots; the per-frame estimator then locks on. The probe slots are
// ordinary protocol slots (their singletons and records count).
package fcat

import (
	"fmt"
	"io"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/analysis"
	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/estimate"
	obsev "github.com/ancrfid/ancrfid/internal/obs"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/record"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// Estimator selects how the reader inverts per-frame slot counts into a
// population estimate.
type Estimator int

const (
	// EstimatorExact (the default) solves the paper's Eq. 12
	// self-consistently: E(n_c) from Eq. 10 is inverted for N numerically.
	// Eq. 12's omega term is omega = N_i * p_i, which contains the unknown,
	// so a faithful reader solves the implicit equation; this estimator
	// stays unbiased even when the running estimate is far from N (e.g. in
	// the tail of a read, where the approximate form overestimates and
	// starves the report probability).
	EstimatorExact Estimator = iota
	// EstimatorClosedForm evaluates Eq. 12 with the *design* omega
	// substituted for N_i*p_i — the one-shot approximation. Accurate while
	// the estimate tracks N; kept as an ablation.
	EstimatorClosedForm
	// EstimatorEmpty inverts the empty-slot count E(n_0) — the alternative
	// the paper rejects for its higher variance; kept for the ablation.
	EstimatorEmpty
)

// String returns the estimator name.
func (e Estimator) String() string {
	switch e {
	case EstimatorClosedForm:
		return "closed-form"
	case EstimatorEmpty:
		return "empty"
	default:
		return "exact"
	}
}

// Config parameterises FCAT.
type Config struct {
	// Lambda is the ANC decoder capability the protocol is tuned for; it
	// selects the default Omega and appears in the protocol name.
	Lambda int

	// Omega overrides the report-probability constant. Zero selects the
	// optimal (lambda!)^(1/lambda) (Section IV-C).
	Omega float64

	// FrameSize is f, the number of slots per frame. Zero selects the
	// paper's default of 30; Fig. 6 shows throughput is stable for f >= 10.
	FrameSize int

	// InitialEstimate seeds the reader's population estimate. Zero enables
	// the geometric bootstrap probe.
	InitialEstimate float64

	// Estimator selects the per-frame estimator (default EstimatorExact,
	// the self-consistent inversion of the paper's Eq. 12).
	Estimator Estimator

	// LastFrameOnly disables the cross-frame running average of the
	// population estimate (the paper averages; this is the ablation knob).
	LastFrameOnly bool

	// OracleEstimate gives the reader the true number of outstanding tags
	// every frame instead of the embedded estimator — the idealised
	// perfect-estimation upper bound used to measure what estimation noise
	// costs. Not a real protocol mode.
	OracleEstimate bool

	// Trace, when non-nil, receives one line per frame with the estimator
	// state (frame, p, slot mix, frame estimate, running estimate,
	// identified count) — a debugging and analysis aid.
	Trace io.Writer
}

// Protocol is a configured FCAT instance.
type Protocol struct {
	cfg Config
}

var _ protocol.Protocol = (*Protocol)(nil)

// New returns an FCAT instance; zero config fields take the paper's
// defaults (lambda = 2, optimal omega, f = 30, bootstrap probing).
func New(cfg Config) *Protocol {
	if cfg.Lambda < 1 {
		cfg.Lambda = 2
	}
	if cfg.Omega <= 0 {
		cfg.Omega = analysis.OptimalOmega(cfg.Lambda)
	}
	if cfg.FrameSize <= 0 {
		cfg.FrameSize = 30
	}
	return &Protocol{cfg: cfg}
}

// Name implements protocol.Protocol.
func (p *Protocol) Name() string { return fmt.Sprintf("FCAT-%d", p.cfg.Lambda) }

// run carries the mutable state of one FCAT execution.
type run struct {
	cfg    Config
	env    *protocol.Env
	m      protocol.Metrics
	clock  air.Clock
	active *protocol.ActiveSet
	store  *record.Store
	seen   map[tagid.ID]struct{}
	buf    []tagid.ID
	slot   uint64
	budget int
}

// Run implements protocol.Protocol.
func (p *Protocol) Run(env *protocol.Env) (protocol.Metrics, error) {
	r := &run{
		cfg:    p.cfg,
		env:    env,
		m:      protocol.Metrics{Tags: len(env.Tags)},
		active: protocol.NewActiveSet(env.Tags),
		store:  record.NewStore(),
		seen:   make(map[tagid.ID]struct{}, len(env.Tags)),
		buf:    make([]tagid.ID, 0, 64),
		budget: env.SlotBudget(),
	}
	r.store.Tracer = env.Tracer
	env.TraceRunStart(p.Name())
	err := r.execute()
	r.m.OnAir = r.clock.Elapsed()
	env.TraceRunEnd(p.Name(), r.m, err)
	return r.m, err
}

func (r *run) execute() error {
	if r.cfg.OracleEstimate {
		return r.executeOracle()
	}
	estimateN := r.cfg.InitialEstimate
	if estimateN <= 0 {
		var err error
		estimateN, err = r.bootstrap()
		if err != nil {
			return err
		}
		if estimateN <= 0 { // bootstrap proved the field empty
			return nil
		}
		r.env.TraceEstimate(obsev.EstimateEvent{Estimate: estimateN})
	}

	var tracker estimate.Tracker
	f := r.cfg.FrameSize
	for {
		remaining := estimateN - float64(r.m.Identified())
		if remaining < 0.5 {
			// The reader believes it has read everything: probe with p = 1.
			done, err := r.probe()
			if err != nil {
				return err
			}
			if done {
				return nil
			}
			// The probe was answered, so tags remain but the stale average
			// says otherwise. Relocate the outstanding count with a short
			// geometric probe (log2 of the deficit in slots) instead of
			// guessing, and drop the stale average.
			rem, err := r.bootstrap()
			if err != nil {
				return err
			}
			estimateN = float64(r.m.Identified()) + rem
			tracker = estimate.Tracker{}
			r.env.TraceEstimate(obsev.EstimateEvent{
				Frame: r.m.Frames, Estimate: estimateN, Identified: r.m.Identified(),
			})
			continue
		}

		p := r.cfg.Omega / remaining
		if p > 1 {
			p = 1
		}
		r.clock.Add(r.env.Timing.FrameAdvertisement())
		r.env.TraceFrame(obsev.FrameEvent{Seq: int(r.slot), Frame: r.m.Frames + 1, Size: f, P: p})
		identifiedBefore := r.m.Identified()
		nc, n0 := 0, 0
		for j := 0; j < f; j++ {
			kind, err := r.doSlot(p)
			if err != nil {
				return err
			}
			switch kind {
			case channel.Empty:
				n0++
			case channel.Collision:
				nc++
			}
		}
		r.m.Frames++

		if n0 == f {
			// A completely silent frame: either the field is exhausted or
			// the estimate overshoots so far that nobody reports. A p=1
			// probe distinguishes the two immediately instead of waiting
			// for the averaged estimate to drift down; if it is answered,
			// relocate the outstanding count as above.
			done, err := r.probe()
			if err != nil {
				return err
			}
			if done {
				return nil
			}
			rem, err := r.bootstrap()
			if err != nil {
				return err
			}
			estimateN = float64(r.m.Identified()) + rem
			tracker = estimate.Tracker{}
			r.env.TraceEstimate(obsev.EstimateEvent{
				Frame: r.m.Frames, Estimate: estimateN, Identified: r.m.Identified(),
			})
			continue
		}

		// Per-frame estimate of the total population: the frame's estimate
		// of participants plus the tags identified before the frame began.
		frameEst, ok := r.estimateFrame(nc, n0, f-n0-nc, p)
		if !ok {
			// Every slot collided: the believed deficit is far too low.
			// Grow the deficit geometrically (doubling the total would
			// double-count the already-identified tags and overshoot).
			deficit := estimateN - float64(r.m.Identified())
			if deficit < 1 {
				deficit = 1
			}
			estimateN = float64(r.m.Identified()) + 2*deficit + 1
			r.env.TraceEstimate(obsev.EstimateEvent{
				Frame: r.m.Frames, Estimate: estimateN, Identified: r.m.Identified(),
			})
			continue
		}
		total := frameEst + float64(identifiedBefore)
		if r.cfg.Trace != nil {
			fmt.Fprintf(r.cfg.Trace, "frame=%d p=%.5f nc=%d n0=%d frameEst=%.0f total=%.0f est=%.0f identified=%d\n",
				r.m.Frames, p, nc, n0, frameEst, total, estimateN, r.m.Identified())
		}
		if r.cfg.LastFrameOnly {
			estimateN = total
		} else {
			// Plain cross-frame average, as the paper prescribes.
			// (Inverse-variance weighting by p^2 was evaluated and rejected:
			// it concentrates weight on tail frames, whose small-count
			// estimates are individually biased, and measures worse.)
			tracker.Add(total)
			estimateN, _ = tracker.Mean()
		}
		r.env.TraceEstimate(obsev.EstimateEvent{
			Frame:      r.m.Frames,
			Estimate:   estimateN,
			FrameEst:   total,
			Identified: r.m.Identified(),
		})
	}
}

// executeOracle runs the frame loop with perfect knowledge of the
// outstanding tag count (the OracleEstimate mode).
func (r *run) executeOracle() error {
	f := r.cfg.FrameSize
	for {
		remaining := len(r.env.Tags) - r.m.Identified()
		if remaining <= 0 {
			done, err := r.probe()
			if err != nil {
				return err
			}
			if done {
				return nil
			}
			continue
		}
		p := r.cfg.Omega / float64(remaining)
		if p > 1 {
			p = 1
		}
		r.clock.Add(r.env.Timing.FrameAdvertisement())
		r.env.TraceFrame(obsev.FrameEvent{Seq: int(r.slot), Frame: r.m.Frames + 1, Size: f, P: p})
		for j := 0; j < f; j++ {
			if _, err := r.doSlot(p); err != nil {
				return err
			}
		}
		r.m.Frames++
	}
}

// estimateFrame inverts the configured per-frame estimator.
func (r *run) estimateFrame(nc, n0, n1 int, p float64) (float64, bool) {
	if nc == 0 && r.cfg.Estimator != EstimatorEmpty {
		// A collision-free frame carries no collision information; in the
		// tail of a read this is the common case. Invert the singleton
		// expectation on its sparse branch instead: E(n1) ~= f*N*p for
		// small N*p, so N ~= n1/(f*p).
		return float64(n1) / (float64(r.cfg.FrameSize) * p), true
	}
	switch r.cfg.Estimator {
	case EstimatorClosedForm:
		return estimate.ClosedForm(nc, r.cfg.FrameSize, p, r.cfg.Omega)
	case EstimatorEmpty:
		return estimate.FromEmpty(n0, r.cfg.FrameSize, p)
	default:
		return estimate.Exact(nc, r.cfg.FrameSize, p)
	}
}

// bootstrap locates the population's order of magnitude with single slots
// at geometrically decreasing report probability. It returns the initial
// estimate, or 0 if the very first probes prove the field empty.
func (r *run) bootstrap() (float64, error) {
	p := 1.0
	for {
		p /= 2
		kind, err := r.doSlotAdvertised(p)
		if err != nil {
			return 0, err
		}
		if kind != channel.Collision {
			// Around the first non-collision, N*p has dropped to order 1,
			// so N is of order 1/p.
			if kind == channel.Empty && p == 0.5 {
				// Nothing at p=1/2: either very few tags or none. Confirm
				// with a p=1 probe.
				probeKind, err := r.doSlotAdvertised(1)
				if err != nil {
					return 0, err
				}
				if probeKind == channel.Empty {
					return 0, nil
				}
			}
			return 1 / p, nil
		}
		if p < 1e-9 {
			return 0, protocol.ErrNoProgress
		}
	}
}

// probe runs one p=1 slot; done reports that the slot was empty, proving
// every tag has been identified (Section IV-A termination).
func (r *run) probe() (done bool, err error) {
	kind, err := r.doSlotAdvertised(1)
	if err != nil {
		return false, err
	}
	return kind == channel.Empty, nil
}

// doSlotAdvertised runs one slot preceded by its own advertisement (used
// by bootstrap and termination probes, which change p for a single slot).
func (r *run) doSlotAdvertised(p float64) (channel.Kind, error) {
	r.clock.Add(r.env.Timing.SlotAdvertisement())
	r.env.TraceAdvert(obsev.AdvertEvent{Seq: int(r.slot), P: p})
	return r.doSlot(p)
}

// doSlot executes one report+acknowledgement slot at report probability p.
func (r *run) doSlot(p float64) (channel.Kind, error) {
	if int(r.slot) >= r.budget {
		return 0, protocol.ErrNoProgress
	}
	slot := r.slot
	r.slot++
	r.clock.Add(r.env.Timing.Slot())

	r.buf = r.active.Transmitters(r.env.RNG, r.env.TxModel, slot, p, r.buf)
	obs := r.env.Channel.Observe(r.buf)
	switch obs.Kind {
	case channel.Empty:
		r.m.EmptySlots++
	case channel.Singleton:
		r.m.SingletonSlots++
		r.countDirect(obs.ID)
		delivered := r.env.AckDelivered()
		r.env.TraceAck(obsev.AckEvent{
			Seq: int(slot), ID: obs.ID, Kind: obsev.AckDirect, Delivered: delivered,
		})
		if delivered {
			r.active.Remove(obs.ID)
		}
		for _, res := range r.store.OnIdentified(obs.ID) {
			r.countResolved(res)
		}
	case channel.Collision:
		r.m.CollisionSlots++
		// Storing the record can resolve it immediately when all but one
		// member are known retransmitters (lost-acknowledgement recovery).
		for _, res := range r.store.Add(slot, obs.Mix, r.buf) {
			r.countResolved(res)
		}
	}
	r.m.TagTransmissions += len(r.buf)
	r.env.NotifySlot(protocol.SlotEvent{
		Seq:          r.m.TotalSlots() - 1,
		Kind:         obs.Kind,
		Transmitters: len(r.buf),
		Identified:   r.m.Identified(),
	})
	return obs.Kind, nil
}

// countDirect records a first-time identification from a singleton slot;
// duplicate reads of a tag whose acknowledgement was lost are discarded
// (Section IV-E).
func (r *run) countDirect(id tagid.ID) {
	if _, dup := r.seen[id]; dup {
		return
	}
	r.seen[id] = struct{}{}
	r.m.DirectIDs++
	r.env.NotifyIdentified(id, false)
}

// countResolved records an ID recovered from a collision record and
// broadcasts the resolved slot's 23-bit index so the tag stops
// (Section V-A); the tag stays active if that acknowledgement is lost.
func (r *run) countResolved(res record.Resolved) {
	if _, dup := r.seen[res.ID]; !dup {
		r.seen[res.ID] = struct{}{}
		r.m.ResolvedIDs++
		r.env.NotifyIdentified(res.ID, true)
	}
	r.clock.Add(r.env.Timing.ResolvedIndexAck())
	delivered := r.env.AckDelivered()
	r.env.TraceAck(obsev.AckEvent{
		Seq: int(r.slot) - 1, ID: res.ID, Kind: obsev.AckResolvedIndex, Delivered: delivered,
	})
	if delivered {
		r.active.Remove(res.ID)
	}
}
