// Package dfsa implements the Dynamic Framed Slotted ALOHA baseline
// (Cha & Kim, CCNC 2006; paper reference [6]).
//
// Each unread tag picks one uniformly random slot per frame. The reader
// reads the singleton slots, estimates the remaining backlog from the
// collision count, and sizes the next frame to match the backlog — the
// condition under which framed ALOHA attains its 1/e per-slot efficiency.
// Collision slots carry no information for DFSA; they are the waste FCAT
// recovers.
package dfsa

import (
	"maps"
	"math"
	"time"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/channel"
	obsev "github.com/ancrfid/ancrfid/internal/obs"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// SchouteFactor is the classical expected number of tags per colliding
// slot at optimal load (Schoute's backlog estimate: backlog ~ 2.39 * c).
const SchouteFactor = 2.39

// Config parameterises DFSA.
type Config struct {
	// InitialFrame is the first frame size. Zero gives the reader a perfect
	// initial estimate (first frame = population size): Cha & Kim pair DFSA
	// with a fast tag-estimation step, and the paper's flat DFSA throughput
	// across N = 1000..20000 shows their baseline pays no ramp-up cost.
	// Granting the baseline the perfect estimate is the conservative choice
	// for the FCAT-versus-DFSA comparison.
	InitialFrame int
	// MaxFrame caps the frame size; zero means uncapped (pure DFSA —
	// EDFSA is the variant that caps and groups). Beware: a capped frame
	// saturates when the backlog far exceeds the cap (no singletons, so no
	// progress) — this is precisely the failure mode EDFSA's tag grouping
	// exists to fix, and such runs end with ErrNoProgress.
	MaxFrame int
}

// Protocol is a configured DFSA instance.
type Protocol struct {
	cfg Config
}

var _ protocol.Protocol = (*Protocol)(nil)

// New returns a DFSA instance.
func New(cfg Config) *Protocol {
	return &Protocol{cfg: cfg}
}

// Name implements protocol.Protocol.
func (p *Protocol) Name() string { return "DFSA" }

var _ protocol.SessionProtocol = (*Protocol)(nil)

// Run implements protocol.Protocol by driving a fresh session to
// completion.
func (p *Protocol) Run(env *protocol.Env) (protocol.Metrics, error) {
	return protocol.RunSession(p, env)
}

// session carries one DFSA execution. A step is one report slot; the frame
// boundaries (announcement and bucketing at the front, the unread filter
// and Schoute re-estimate at the back) fold into the steps that run the
// frame's first and last slots.
type session struct {
	p       *Protocol
	env     *protocol.Env
	m       protocol.Metrics
	clock   air.Clock
	unread  []tagid.ID
	seen    map[tagid.ID]struct{}
	scratch FrameScratch

	slots, budget int
	frameSize     int

	// Current-frame state, meaningful while inFrame.
	inFrame                   bool
	frameLen                  int
	slotJ                     int
	collisions, transmissions int
	occ                       [][]tagid.ID
	read                      map[tagid.ID]struct{}

	err error
}

var _ protocol.Session = (*session)(nil)

// Begin implements protocol.SessionProtocol.
func (p *Protocol) Begin(env *protocol.Env) protocol.Session {
	s := &session{
		p:      p,
		env:    env,
		m:      protocol.Metrics{Tags: len(env.Tags)},
		unread: make([]tagid.ID, len(env.Tags)),
		seen:   make(map[tagid.ID]struct{}, len(env.Tags)),
		budget: env.SlotBudget(),
	}
	env.Clock = &s.clock
	env.TraceRunStart(p.Name())
	copy(s.unread, env.Tags)
	s.frameSize = p.cfg.InitialFrame
	if s.frameSize <= 0 {
		s.frameSize = len(env.Tags)
	}
	return s
}

// Protocol implements protocol.Session.
func (s *session) Protocol() string { return s.p.Name() }

// Step implements protocol.Session. A done session keeps stepping: the
// empty-field steady state is a one-slot frame per step (Schoute's estimate
// of an empty frame, clamped to one slot), so newly admitted tags are
// observed on the next frame.
func (s *session) Step() (bool, error) {
	if s.err != nil {
		return false, s.err
	}
	if !s.inFrame {
		if s.slots >= s.budget {
			s.err = protocol.ErrNoProgress
			return false, s.err
		}
		f := s.frameSize
		if f < 1 {
			f = 1
		}
		if s.p.cfg.MaxFrame > 0 && f > s.p.cfg.MaxFrame {
			f = s.p.cfg.MaxFrame
		}
		s.clock.Add(s.env.Timing.FrameAnnouncement())
		s.m.Frames++
		s.env.TraceFrame(obsev.FrameEvent{Seq: s.slots, Frame: s.m.Frames, Size: f, P: 1})
		// Bucket the tags by their chosen slot.
		s.occ = s.scratch.Buckets(f)
		for _, id := range s.unread {
			j := s.env.RNG.Intn(f)
			s.occ[j] = append(s.occ[j], id)
		}
		s.read = s.scratch.Read()
		s.frameLen = f
		s.slotJ, s.collisions, s.transmissions = 0, 0, 0
		s.inFrame = true
	}

	tx := s.occ[s.slotJ]
	s.transmissions += len(tx)
	obs := s.env.Channel.Observe(tx)
	switch obs.Kind {
	case channel.Empty:
		s.m.EmptySlots++
	case channel.Singleton:
		s.m.SingletonSlots++
		if _, dup := s.seen[obs.ID]; !dup {
			s.seen[obs.ID] = struct{}{}
			s.m.DirectIDs++
			s.env.NotifyIdentified(obs.ID, false)
		}
		delivered := s.env.AckDelivered()
		s.env.TraceAck(obsev.AckEvent{
			Seq: s.m.TotalSlots() - 1, ID: obs.ID, Kind: obsev.AckDirect, Delivered: delivered,
		})
		if delivered {
			s.read[obs.ID] = struct{}{}
		}
	case channel.Collision:
		// DFSA discards the mixed signal; a corrupted singleton also lands
		// here and retries next frame.
		s.m.CollisionSlots++
		s.collisions++
	case channel.Captured:
		// Capture effect: the slot collided but the strongest tag decoded
		// anyway. A plain DFSA reader has no record store, so it simply
		// acknowledges the captured read; the other colliders retry next
		// frame. Schoute's estimator still counts the slot as a collision.
		s.m.CollisionSlots++
		s.collisions++
		if _, dup := s.seen[obs.ID]; !dup {
			s.seen[obs.ID] = struct{}{}
			s.m.DirectIDs++
			s.env.NotifyIdentified(obs.ID, false)
		}
		delivered := s.env.AckDelivered()
		s.env.TraceAck(obsev.AckEvent{
			Seq: s.m.TotalSlots() - 1, ID: obs.ID, Kind: obsev.AckDirect, Delivered: delivered,
		})
		if delivered {
			s.read[obs.ID] = struct{}{}
		}
	}
	s.m.TagTransmissions += len(tx)
	s.env.NotifySlot(protocol.SlotEvent{
		Seq:          s.m.TotalSlots() - 1,
		Kind:         obs.Kind,
		Transmitters: len(tx),
		Identified:   s.m.Identified(),
	})
	s.slotJ++
	s.slots++
	s.clock.Add(s.env.Timing.Slot())
	if s.slotJ < s.frameLen {
		return false, nil
	}

	// Frame end: silence the tags read this frame.
	s.inFrame = false
	if len(s.read) > 0 {
		remaining := s.unread[:0]
		for _, id := range s.unread {
			if _, ok := s.read[id]; !ok {
				remaining = append(remaining, id)
			}
		}
		s.unread = remaining
	}
	if s.transmissions == 0 {
		// An entirely empty frame proves every tag has been read.
		return true, nil
	}
	// Schoute's estimate: each colliding slot hides ~2.39 tags.
	s.frameSize = int(math.Round(SchouteFactor * float64(s.collisions)))
	s.env.TraceEstimate(obsev.EstimateEvent{
		Frame: s.m.Frames, Estimate: float64(s.frameSize), Identified: s.m.Identified(),
	})
	return false, nil
}

// Admit implements protocol.Session: the tags join the unread backlog and
// first transmit in the next frame's bucketing.
func (s *session) Admit(ids []tagid.ID) {
	for _, id := range ids {
		if _, identified := s.seen[id]; identified {
			continue
		}
		if containsID(s.unread, id) {
			continue
		}
		s.unread = append(s.unread, id)
		s.m.Tags++
	}
}

// Revoke implements protocol.Session: the tags leave the backlog and stop
// transmitting immediately — they are stripped from the current frame's
// remaining slot buckets.
func (s *session) Revoke(ids []tagid.ID) {
	for _, id := range ids {
		if !removeID(&s.unread, id) {
			continue
		}
		if s.inFrame {
			for j := s.slotJ; j < s.frameLen; j++ {
				bucket := s.occ[j]
				if removeID(&bucket, id) {
					s.occ[j] = bucket
					break
				}
			}
		}
	}
}

// containsID reports whether ids contains id.
func containsID(ids []tagid.ID, id tagid.ID) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// removeID deletes id from *ids preserving order; it reports whether the
// id was present.
func removeID(ids *[]tagid.ID, id tagid.ID) bool {
	for i, v := range *ids {
		if v == id {
			*ids = append((*ids)[:i], (*ids)[i+1:]...)
			return true
		}
	}
	return false
}

// Metrics implements protocol.Session.
func (s *session) Metrics() protocol.Metrics {
	m := s.m
	m.OnAir = s.clock.Elapsed()
	return m
}

// Elapsed implements protocol.Session.
func (s *session) Elapsed() time.Duration { return s.clock.Elapsed() }

// Outstanding implements protocol.Session.
func (s *session) Outstanding() int { return len(s.unread) }

// checkpoint is a deep copy of a DFSA session's state.
type checkpoint struct {
	name   string
	m      protocol.Metrics
	clock  air.Clock
	unread []tagid.ID
	seen   map[tagid.ID]struct{}

	slots, budget int
	frameSize     int

	inFrame                   bool
	frameLen                  int
	slotJ                     int
	collisions, transmissions int
	occ                       [][]tagid.ID
	read                      map[tagid.ID]struct{}

	err error

	rng       rng.Source
	chanState any
}

// Protocol implements protocol.Checkpoint.
func (c *checkpoint) Protocol() string { return c.name }

// Snapshot implements protocol.Session.
func (s *session) Snapshot() (protocol.Checkpoint, error) {
	cp := &checkpoint{
		name:          s.p.Name(),
		m:             s.m,
		clock:         s.clock,
		unread:        append([]tagid.ID(nil), s.unread...),
		seen:          maps.Clone(s.seen),
		slots:         s.slots,
		budget:        s.budget,
		frameSize:     s.frameSize,
		inFrame:       s.inFrame,
		frameLen:      s.frameLen,
		slotJ:         s.slotJ,
		collisions:    s.collisions,
		transmissions: s.transmissions,
		err:           s.err,
		rng:           *s.env.RNG,
	}
	if s.inFrame {
		cp.occ = cloneBuckets(s.occ)
		cp.read = maps.Clone(s.read)
	}
	if st, ok := s.env.Channel.(channel.Stateful); ok {
		cp.chanState = st.SnapshotState()
	}
	return cp, nil
}

// Restore implements protocol.Session.
func (s *session) Restore(c protocol.Checkpoint) error {
	cp, ok := c.(*checkpoint)
	if !ok || cp.name != s.p.Name() {
		return protocol.ErrCheckpointMismatch
	}
	s.m = cp.m
	s.clock = cp.clock
	s.unread = append(s.unread[:0:0], cp.unread...)
	s.seen = maps.Clone(cp.seen)
	s.slots = cp.slots
	s.budget = cp.budget
	s.frameSize = cp.frameSize
	s.inFrame = cp.inFrame
	s.frameLen = cp.frameLen
	s.slotJ = cp.slotJ
	s.collisions = cp.collisions
	s.transmissions = cp.transmissions
	s.occ = nil
	s.read = nil
	if cp.inFrame {
		s.occ = cloneBuckets(cp.occ)
		s.read = maps.Clone(cp.read)
	}
	s.err = cp.err
	*s.env.RNG = cp.rng
	if cp.chanState != nil {
		s.env.Channel.(channel.Stateful).RestoreState(cp.chanState)
	}
	return nil
}

// cloneBuckets deep-copies a frame's slot-occupancy buckets.
func cloneBuckets(occ [][]tagid.ID) [][]tagid.ID {
	out := make([][]tagid.ID, len(occ))
	for i, b := range occ {
		if len(b) > 0 {
			out[i] = append([]tagid.ID(nil), b...)
		}
	}
	return out
}

// FrameScratch holds the per-frame bucketing state of a framed-ALOHA slot
// loop — the slot-occupancy buckets and the read-this-frame set — reused
// across frames so the steady state does not reallocate them. EDFSA's
// per-group frames share the same scratch. The zero value is ready to use.
type FrameScratch struct {
	occupants [][]tagid.ID
	read      map[tagid.ID]struct{}
}

// Buckets returns frameSize empty occupancy buckets, each keeping the
// capacity it grew in earlier frames.
func (sc *FrameScratch) Buckets(frameSize int) [][]tagid.ID {
	for cap(sc.occupants) < frameSize {
		sc.occupants = append(sc.occupants[:cap(sc.occupants)], nil)
	}
	occ := sc.occupants[:frameSize]
	for i := range occ {
		occ[i] = occ[i][:0]
	}
	return occ
}

// Read returns the emptied read-this-frame set.
func (sc *FrameScratch) Read() map[tagid.ID]struct{} {
	if sc.read == nil {
		sc.read = make(map[tagid.ID]struct{})
		return sc.read
	}
	clear(sc.read)
	return sc.read
}
