// Package dfsa implements the Dynamic Framed Slotted ALOHA baseline
// (Cha & Kim, CCNC 2006; paper reference [6]).
//
// Each unread tag picks one uniformly random slot per frame. The reader
// reads the singleton slots, estimates the remaining backlog from the
// collision count, and sizes the next frame to match the backlog — the
// condition under which framed ALOHA attains its 1/e per-slot efficiency.
// Collision slots carry no information for DFSA; they are the waste FCAT
// recovers.
package dfsa

import (
	"math"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/channel"
	obsev "github.com/ancrfid/ancrfid/internal/obs"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

// SchouteFactor is the classical expected number of tags per colliding
// slot at optimal load (Schoute's backlog estimate: backlog ~ 2.39 * c).
const SchouteFactor = 2.39

// Config parameterises DFSA.
type Config struct {
	// InitialFrame is the first frame size. Zero gives the reader a perfect
	// initial estimate (first frame = population size): Cha & Kim pair DFSA
	// with a fast tag-estimation step, and the paper's flat DFSA throughput
	// across N = 1000..20000 shows their baseline pays no ramp-up cost.
	// Granting the baseline the perfect estimate is the conservative choice
	// for the FCAT-versus-DFSA comparison.
	InitialFrame int
	// MaxFrame caps the frame size; zero means uncapped (pure DFSA —
	// EDFSA is the variant that caps and groups). Beware: a capped frame
	// saturates when the backlog far exceeds the cap (no singletons, so no
	// progress) — this is precisely the failure mode EDFSA's tag grouping
	// exists to fix, and such runs end with ErrNoProgress.
	MaxFrame int
}

// Protocol is a configured DFSA instance.
type Protocol struct {
	cfg Config
}

var _ protocol.Protocol = (*Protocol)(nil)

// New returns a DFSA instance.
func New(cfg Config) *Protocol {
	return &Protocol{cfg: cfg}
}

// Name implements protocol.Protocol.
func (p *Protocol) Name() string { return "DFSA" }

// Run implements protocol.Protocol.
func (p *Protocol) Run(env *protocol.Env) (protocol.Metrics, error) {
	m, err := p.run(env)
	env.TraceRunEnd(p.Name(), m, err)
	return m, err
}

func (p *Protocol) run(env *protocol.Env) (protocol.Metrics, error) {
	var (
		m     = protocol.Metrics{Tags: len(env.Tags)}
		clock air.Clock
	)
	env.TraceRunStart(p.Name())
	unread := make([]tagid.ID, len(env.Tags))
	copy(unread, env.Tags)
	seen := make(map[tagid.ID]struct{}, len(env.Tags))
	budget := env.SlotBudget()
	frameSize := p.cfg.InitialFrame
	if frameSize <= 0 {
		frameSize = len(env.Tags)
	}
	slots := 0
	var scratch FrameScratch

	for {
		if slots >= budget {
			m.OnAir = clock.Elapsed()
			return m, protocol.ErrNoProgress
		}
		if frameSize < 1 {
			frameSize = 1
		}
		if p.cfg.MaxFrame > 0 && frameSize > p.cfg.MaxFrame {
			frameSize = p.cfg.MaxFrame
		}
		clock.Add(env.Timing.FrameAnnouncement())
		m.Frames++
		env.TraceFrame(obsev.FrameEvent{Seq: slots, Frame: m.Frames, Size: frameSize, P: 1})

		var collisions, transmissions int
		unread, collisions, transmissions = runFrame(env, &scratch, frameSize, unread, seen, &m)
		slots += frameSize
		clock.AddSlots(env.Timing, frameSize)

		if transmissions == 0 {
			// An entirely empty frame proves every tag has been read.
			m.OnAir = clock.Elapsed()
			return m, nil
		}
		// Schoute's estimate: each colliding slot hides ~2.39 tags.
		frameSize = int(math.Round(SchouteFactor * float64(collisions)))
		env.TraceEstimate(obsev.EstimateEvent{
			Frame: m.Frames, Estimate: float64(frameSize), Identified: m.Identified(),
		})
	}
}

// FrameScratch holds the per-frame bucketing state of a framed-ALOHA slot
// loop — the slot-occupancy buckets and the read-this-frame set — reused
// across frames so the steady state does not reallocate them. EDFSA's
// per-group frames share the same scratch. The zero value is ready to use.
type FrameScratch struct {
	occupants [][]tagid.ID
	read      map[tagid.ID]struct{}
}

// Buckets returns frameSize empty occupancy buckets, each keeping the
// capacity it grew in earlier frames.
func (sc *FrameScratch) Buckets(frameSize int) [][]tagid.ID {
	for cap(sc.occupants) < frameSize {
		sc.occupants = append(sc.occupants[:cap(sc.occupants)], nil)
	}
	occ := sc.occupants[:frameSize]
	for i := range occ {
		occ[i] = occ[i][:0]
	}
	return occ
}

// Read returns the emptied read-this-frame set.
func (sc *FrameScratch) Read() map[tagid.ID]struct{} {
	if sc.read == nil {
		sc.read = make(map[tagid.ID]struct{})
		return sc.read
	}
	clear(sc.read)
	return sc.read
}

// runFrame simulates one frame: every unread tag picks one slot; the reader
// observes each slot through the channel. It updates metrics and returns
// the still-unread tags, the collision count, and the number of tags that
// transmitted. seen holds the IDs counted in earlier frames so that a tag
// retransmitting after a lost acknowledgement is not double-counted.
func runFrame(env *protocol.Env, scratch *FrameScratch, frameSize int, unread []tagid.ID, seen map[tagid.ID]struct{}, m *protocol.Metrics) (remaining []tagid.ID, collisions, transmissions int) {
	// Bucket the tags by their chosen slot.
	occupants := scratch.Buckets(frameSize)
	for _, id := range unread {
		s := env.RNG.Intn(frameSize)
		occupants[s] = append(occupants[s], id)
	}
	read := scratch.Read()
	for _, tx := range occupants {
		transmissions += len(tx)
		obs := env.Channel.Observe(tx)
		switch obs.Kind {
		case channel.Empty:
			m.EmptySlots++
		case channel.Singleton:
			m.SingletonSlots++
			if _, dup := seen[obs.ID]; !dup {
				seen[obs.ID] = struct{}{}
				m.DirectIDs++
				env.NotifyIdentified(obs.ID, false)
			}
			delivered := env.AckDelivered()
			env.TraceAck(obsev.AckEvent{
				Seq: m.TotalSlots() - 1, ID: obs.ID, Kind: obsev.AckDirect, Delivered: delivered,
			})
			if delivered {
				read[obs.ID] = struct{}{}
			}
		case channel.Collision:
			// DFSA discards the mixed signal; a corrupted singleton also
			// lands here and retries next frame.
			m.CollisionSlots++
			collisions++
		}
		m.TagTransmissions += len(tx)
		env.NotifySlot(protocol.SlotEvent{
			Seq:          m.TotalSlots() - 1,
			Kind:         obs.Kind,
			Transmitters: len(tx),
			Identified:   m.Identified(),
		})
	}
	remaining = unread
	if len(read) > 0 {
		remaining = unread[:0]
		for _, id := range unread {
			if _, ok := read[id]; !ok {
				remaining = append(remaining, id)
			}
		}
	}
	return remaining, collisions, transmissions
}
