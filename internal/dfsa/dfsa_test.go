package dfsa

import (
	"errors"
	"math"
	"testing"
	"time"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

func env(seed uint64, tags int, cfg channel.AbstractConfig) *protocol.Env {
	r := rng.New(seed)
	return &protocol.Env{
		RNG:     r,
		Tags:    tagid.Population(r, tags),
		Channel: channel.NewAbstract(cfg, r),
		Timing:  air.ICode(),
	}
}

func TestName(t *testing.T) {
	if New(Config{}).Name() != "DFSA" {
		t.Fatal("wrong name")
	}
}

func TestIdentifiesEveryTag(t *testing.T) {
	for _, n := range []int{1, 5, 200, 4000} {
		m, err := New(Config{}).Run(env(uint64(n), n, channel.AbstractConfig{Lambda: 2}))
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if m.Identified() != n || m.DirectIDs != n || m.ResolvedIDs != 0 {
			t.Fatalf("N=%d: direct=%d resolved=%d", n, m.DirectIDs, m.ResolvedIDs)
		}
	}
}

func TestEmptyPopulation(t *testing.T) {
	m, err := New(Config{}).Run(env(1, 0, channel.AbstractConfig{Lambda: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 0 {
		t.Fatal("identified tags in empty field")
	}
}

func TestSlotStatisticsNearOptimum(t *testing.T) {
	// At the matched load (frame = backlog) the slot mix approaches the
	// 1/e fractions: empty ~ singleton ~ 0.368, collision ~ 0.264, and the
	// total approaches e*N (Table II's DFSA column).
	const n = 8000
	m, err := New(Config{}).Run(env(2, n, channel.AbstractConfig{Lambda: 2}))
	if err != nil {
		t.Fatal(err)
	}
	total := float64(m.TotalSlots())
	if math.Abs(total-math.E*n)/(math.E*n) > 0.06 {
		t.Errorf("total slots %v, want ~e*N = %v", total, math.E*n)
	}
	if frac := float64(m.SingletonSlots) / total; math.Abs(frac-1/math.E) > 0.03 {
		t.Errorf("singleton fraction %v, want ~0.368", frac)
	}
	if frac := float64(m.EmptySlots) / total; math.Abs(frac-1/math.E) > 0.04 {
		t.Errorf("empty fraction %v, want ~0.368", frac)
	}
}

func TestThroughputNearAlohaBound(t *testing.T) {
	const n = 5000
	m, err := New(Config{}).Run(env(3, n, channel.AbstractConfig{Lambda: 2}))
	if err != nil {
		t.Fatal(err)
	}
	bound := 1 / (math.E * air.ICode().Slot().Seconds())
	tput := m.Throughput()
	// The bound is asymptotic; finite populations give slightly more
	// singletons than Poisson ((1-1/n)^(n-1) > 1/e), so allow ~2% above —
	// the paper's own Table I shows DFSA at 132.8 for the same reason.
	if tput > bound*1.02 {
		t.Errorf("throughput %v exceeds the ALOHA bound %v by too much", tput, bound)
	}
	if tput < bound*0.93 {
		t.Errorf("throughput %v far below the ALOHA bound %v", tput, bound)
	}
}

func TestExplicitInitialFrame(t *testing.T) {
	// A poor initial frame still completes, just more slowly.
	m, err := New(Config{InitialFrame: 4}).Run(env(4, 1000, channel.AbstractConfig{Lambda: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 1000 {
		t.Fatalf("identified %d of 1000", m.Identified())
	}
}

func TestMaxFrameCap(t *testing.T) {
	// A cap above the saturation point slows the read but completes.
	m, err := New(Config{MaxFrame: 64}).Run(env(5, 150, channel.AbstractConfig{Lambda: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 150 {
		t.Fatalf("identified %d of 150 with capped frames", m.Identified())
	}
}

func TestMaxFrameSaturationFails(t *testing.T) {
	// A deeply overloaded capped frame makes no progress: this is the
	// failure mode EDFSA's grouping fixes (Section VII).
	e := env(55, 2000, channel.AbstractConfig{Lambda: 2})
	e.MaxSlots = 5000
	_, err := New(Config{MaxFrame: 64}).Run(e)
	if !errors.Is(err, protocol.ErrNoProgress) {
		t.Fatalf("err = %v, want ErrNoProgress", err)
	}
}

func TestCorruptionRetries(t *testing.T) {
	m, err := New(Config{}).Run(env(6, 500, channel.AbstractConfig{Lambda: 2, PCorruptSingleton: 0.2}))
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 500 {
		t.Fatalf("identified %d of 500 under corruption", m.Identified())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() protocol.Metrics {
		m, err := New(Config{}).Run(env(7, 900, channel.AbstractConfig{Lambda: 2}))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if a, b := run(), run(); a != b {
		t.Fatal("same seed, different metrics")
	}
}

func TestFramesAccounted(t *testing.T) {
	m, err := New(Config{}).Run(env(8, 1000, channel.AbstractConfig{Lambda: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if m.Frames < 2 {
		t.Fatalf("frames = %d", m.Frames)
	}
	tm := air.ICode()
	want := time.Duration(m.TotalSlots())*tm.Slot() + time.Duration(m.Frames)*tm.FrameAnnouncement()
	if m.OnAir != want {
		t.Fatalf("air time %v, want slots+announcements = %v", m.OnAir, want)
	}
}

func TestAckLossStillCompletes(t *testing.T) {
	e := env(30, 400, channel.AbstractConfig{Lambda: 2})
	e.PAckLoss = 0.4
	m, err := New(Config{}).Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 400 {
		t.Fatalf("identified %d of 400 under ack loss", m.Identified())
	}
}

func TestAckLossNoDoubleCounting(t *testing.T) {
	e := env(31, 300, channel.AbstractConfig{Lambda: 2})
	e.PAckLoss = 0.5
	counts := make(map[tagid.ID]int)
	e.OnIdentified = func(id tagid.ID, _ bool) { counts[id]++ }
	if _, err := New(Config{}).Run(e); err != nil {
		t.Fatal(err)
	}
	for id, c := range counts {
		if c != 1 {
			t.Fatalf("tag %v counted %d times", id, c)
		}
	}
}
