// Package ancrfid is a library for collision-aware RFID tag identification
// with analog network coding (ANC), reproducing "Using Analog Network
// Coding to Improve the RFID Reading Throughput" (Zhang, Li, Chen, Li —
// ICDCS 2010).
//
// The package exposes:
//
//   - The paper's protocols: FCAT (framed collision-aware identification,
//     the main contribution) and SCAT (its per-slot precursor).
//   - The baselines the paper evaluates against: DFSA, EDFSA (ALOHA
//     family) and ABS, AQS (tree family), plus CRDSA — the satellite-network
//     collision-resolution scheme the paper discusses in Section III-C.
//   - A Monte-Carlo simulation harness with the paper's Philips I-Code
//     timing model, and both of the paper's channel models: the slot-level
//     abstract model (collisions of multiplicity <= lambda are resolvable)
//     and a full physical-layer model in which collision records are
//     resolved by actually cancelling MSK waveforms and checking CRCs.
//   - The paper's closed-form analysis: optimal report-probability
//     constants, expected slot counts, estimator bias and variance, and
//     throughput bounds.
//
// Quick start:
//
//	result, err := ancrfid.Run(ancrfid.NewFCAT(2), ancrfid.SimConfig{
//		Tags: 1000,
//		Runs: 20,
//		Seed: 1,
//	})
//	fmt.Printf("%.1f tags/s\n", result.Throughput.Mean)
//
// The experiments that regenerate every table and figure of the paper live
// behind the cmd/tables binary and the benchmarks in bench_test.go; see
// EXPERIMENTS.md for the measured-versus-paper comparison.
package ancrfid

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"github.com/ancrfid/ancrfid/internal/air"
	"github.com/ancrfid/ancrfid/internal/analysis"
	"github.com/ancrfid/ancrfid/internal/channel"
	"github.com/ancrfid/ancrfid/internal/crdsa"
	"github.com/ancrfid/ancrfid/internal/dfsa"
	"github.com/ancrfid/ancrfid/internal/edfsa"
	"github.com/ancrfid/ancrfid/internal/fault"
	"github.com/ancrfid/ancrfid/internal/fcat"
	"github.com/ancrfid/ancrfid/internal/fleet"
	"github.com/ancrfid/ancrfid/internal/mdfsa"
	"github.com/ancrfid/ancrfid/internal/obs"
	"github.com/ancrfid/ancrfid/internal/praloha"
	"github.com/ancrfid/ancrfid/internal/prestep"
	"github.com/ancrfid/ancrfid/internal/protocol"
	"github.com/ancrfid/ancrfid/internal/registry"
	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/scat"
	"github.com/ancrfid/ancrfid/internal/server"
	"github.com/ancrfid/ancrfid/internal/sim"
	"github.com/ancrfid/ancrfid/internal/tagid"
	"github.com/ancrfid/ancrfid/internal/treeproto"
	"github.com/ancrfid/ancrfid/internal/workload"
)

// Core protocol and simulation types, re-exported for public use.
type (
	// Protocol is a complete tag-identification protocol.
	Protocol = protocol.Protocol
	// Metrics are the observable outcomes of one protocol run.
	Metrics = protocol.Metrics
	// Env is the environment a single protocol run executes in.
	Env = protocol.Env
	// SimConfig describes a Monte-Carlo campaign. Setting Workers > 1 runs
	// the campaign's repetitions on a worker pool; results, traces and
	// metrics are bit-identical to sequential (see docs/parallelism.md).
	SimConfig = sim.Config
	// SimResult aggregates a campaign.
	SimResult = sim.Result
	// Timing is the air-interface timing model.
	Timing = air.Timing
	// TagID is a 96-bit tag identifier with embedded CRC-16.
	TagID = tagid.ID
	// RNG is the deterministic random source used throughout.
	RNG = rng.Source
	// Channel models the report segment of a slot.
	Channel = channel.Channel
	// AbstractChannelConfig parameterises the paper's slot-level channel.
	AbstractChannelConfig = channel.AbstractConfig
	// SignalChannelConfig parameterises the physical-layer channel.
	SignalChannelConfig = channel.SignalConfig
	// ChannelCapability is the unified decode-capability model shared by
	// both channels: maximum resolvable collision order, capture-effect
	// SINR threshold and the per-tag link budget behind it. The zero value
	// is the degenerate capability (legacy Lambda semantics, no capture).
	ChannelCapability = channel.Capability
	// LinkBudget derives per-tag receive power from a deterministic
	// hash-placed distance draw (see docs/decoding.md).
	LinkBudget = tagid.LinkBudget
	// FCATConfig parameterises FCAT beyond its lambda.
	FCATConfig = fcat.Config
	// SCATConfig parameterises SCAT beyond its lambda.
	SCATConfig = scat.Config
	// PreEstimateConfig tunes SCAT's pre-estimation phase (the paper's
	// reference [24] scheme implemented in this module).
	PreEstimateConfig = prestep.Config
	// SlotEvent describes one completed report segment for Env.OnSlot
	// observers.
	SlotEvent = protocol.SlotEvent
)

// Observability types, re-exported from the obs subsystem. A Tracer set on
// Env.Tracer (single run) or SimConfig.Tracer (whole campaign) receives the
// run's typed event stream; a Registry set on SimConfig.Metrics aggregates
// campaign-wide counters and histograms. See docs/observability.md.
type (
	// Tracer receives the typed event stream of a protocol run.
	Tracer = obs.Tracer
	// TracerHooks is a Tracer assembled from optional per-event funcs.
	TracerHooks = obs.Hooks
	// Registry is a concurrency-safe metrics registry of counters and
	// histograms.
	Registry = obs.Registry

	// TraceRunStartEvent opens a run.
	TraceRunStartEvent = obs.RunStartEvent
	// TraceRunEndEvent closes a run with its totals.
	TraceRunEndEvent = obs.RunEndEvent
	// TraceFrameEvent marks a frame boundary (framed protocols).
	TraceFrameEvent = obs.FrameEvent
	// TraceAdvertEvent reports a per-slot advertisement (SCAT).
	TraceAdvertEvent = obs.AdvertEvent
	// TraceSlotEvent reports one completed report segment.
	TraceSlotEvent = obs.SlotEvent
	// TraceIdentifyEvent reports a first-time tag identification.
	TraceIdentifyEvent = obs.IdentifyEvent
	// TraceAckEvent reports an acknowledgement and whether it reached the tag.
	TraceAckEvent = obs.AckEvent
	// TraceRecordEvent reports a collision record being stored.
	TraceRecordEvent = obs.RecordEvent
	// TraceCascadeEvent reports one step of a resolution cascade.
	TraceCascadeEvent = obs.CascadeEvent
	// TraceResolveEvent reports an ID recovered from a collision record.
	TraceResolveEvent = obs.ResolveEvent
	// TraceEstimateEvent reports a population-estimate update.
	TraceEstimateEvent = obs.EstimateEvent
	// AckKind distinguishes direct, resolved-index and resolved-ID acks.
	AckKind = obs.AckKind
)

// Acknowledgement kinds carried by TraceAckEvent.
const (
	// AckDirect acknowledges a singleton-slot read.
	AckDirect = obs.AckDirect
	// AckResolvedIndex acknowledges an ANC-resolved ID by slot index
	// (FCAT's 23-bit ack).
	AckResolvedIndex = obs.AckResolvedIndex
	// AckResolvedID acknowledges an ANC-resolved ID in full (SCAT).
	AckResolvedID = obs.AckResolvedID
)

// TraceSchemaVersion is the version stamped on every JSONL trace line.
const TraceSchemaVersion = obs.SchemaVersion

// MultiTracer fans events out to several tracers in order (nils skipped).
func MultiTracer(tracers ...Tracer) Tracer { return obs.Multi(tracers...) }

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewMetricsTracer returns a Tracer that folds events into reg.
func NewMetricsTracer(reg *Registry) Tracer { return obs.NewMetricsTracer(reg) }

// NewJSONLTracer returns a Tracer that writes one JSON object per event to
// w (the trace format behind rfidsim -trace); check Err when done.
func NewJSONLTracer(w io.Writer) *obs.JSONL { return obs.NewJSONL(w) }

// NewTimelineTracer returns a Tracer that renders a human-readable slot
// timeline to w (the format behind rfidsim -timeline).
func NewTimelineTracer(w io.Writer) *obs.Timeline { return obs.NewTimeline(w) }

// Telemetry-plane types, re-exported from the obs subsystem: hierarchical
// spans over simulated time, streaming quantile sketches, health scoring and
// the Prometheus exposition (see docs/observability.md).
type (
	// Span is one node of the hierarchical trace (campaign > run > frame >
	// slot > decode activity).
	Span = obs.Span
	// SpanKind classifies a span.
	SpanKind = obs.SpanKind
	// SpanSink consumes a span stream.
	SpanSink = obs.SpanSink
	// SpanSinkFunc adapts a function to a SpanSink.
	SpanSinkFunc = obs.SpanSinkFunc
	// SpanBuilder is a Tracer folding the event stream into spans.
	SpanBuilder = obs.SpanBuilder
	// ChromeTrace is a SpanSink writing Chrome trace-event JSON (Perfetto).
	ChromeTrace = obs.ChromeTrace
	// Sketch is a streaming log-bucket quantile sketch.
	Sketch = obs.Sketch
	// HealthMonitor is a Tracer scoring system health from the event stream.
	HealthMonitor = obs.HealthMonitor
	// HealthConfig tunes the health monitor's detectors.
	HealthConfig = obs.HealthConfig
	// HealthEvent is one typed health-state transition.
	HealthEvent = obs.HealthEvent
	// HealthKind classifies a health transition.
	HealthKind = obs.HealthKind
	// HealthSnapshot is a point-in-time health view (the /healthz payload).
	HealthSnapshot = obs.HealthSnapshot
)

// Span kinds emitted by SpanBuilder.
const (
	SpanCampaign   = obs.SpanCampaign
	SpanRun        = obs.SpanRun
	SpanFrame      = obs.SpanFrame
	SpanSlot       = obs.SpanSlot
	SpanResolution = obs.SpanResolution
	SpanAdvert     = obs.SpanAdvert
	SpanIdentify   = obs.SpanIdentify
	SpanAck        = obs.SpanAck
	SpanRecord     = obs.SpanRecord
	SpanCascade    = obs.SpanCascade
	SpanResolve    = obs.SpanResolve
	SpanEstimate   = obs.SpanEstimate
	SpanArrival    = obs.SpanArrival
	SpanDeparture  = obs.SpanDeparture
	SpanCheckpoint = obs.SpanCheckpoint
	SpanFault      = obs.SpanFault
	SpanQuarantine = obs.SpanQuarantine
	SpanRestart    = obs.SpanRestart
)

// Health transition kinds carried by HealthEvent.
const (
	HealthStall           = obs.HealthStall
	HealthRecovered       = obs.HealthRecovered
	HealthQuarantineSurge = obs.HealthQuarantineSurge
	HealthRunFailed       = obs.HealthRunFailed
)

// Sketch names registered by the metrics tracer (see docs/observability.md).
const (
	// SketchIdentLatencyUS holds identification latency in microseconds of
	// simulated time.
	SketchIdentLatencyUS = obs.SketchIdentLatencyUS
	// SketchCascadeDepth holds the cascade depth of record resolutions.
	SketchCascadeDepth = obs.SketchCascadeDepth
)

// NewSpanBuilder returns a Tracer that folds the event stream into
// hierarchical spans emitted to sink; call Close after the campaign.
func NewSpanBuilder(sink SpanSink) *SpanBuilder { return obs.NewSpanBuilder(sink) }

// NewChromeTrace returns a SpanSink writing the Chrome trace-event JSON
// format to w (loadable in Perfetto); call Close when done. The format
// behind rfidsim -spans.
func NewChromeTrace(w io.Writer) *ChromeTrace { return obs.NewChromeTrace(w) }

// NewHealthMonitor returns a Tracer that scores health from the event
// stream (zero config fields take defaults).
func NewHealthMonitor(cfg HealthConfig) *HealthMonitor { return obs.NewHealthMonitor(cfg) }

// WritePrometheus writes reg in the Prometheus text exposition format (the
// payload behind rfidsim -serve's /metrics endpoint).
func WritePrometheus(w io.Writer, reg *Registry) (int64, error) {
	return obs.WritePrometheus(w, reg)
}

// ErrNoProgress is returned when a run exhausts its slot budget before
// identifying every tag — a livelocked read (e.g. a channel too noisy for
// any decode to succeed).
var ErrNoProgress = protocol.ErrNoProgress

// Transmission models for the probabilistic protocols.
const (
	// TxHash evaluates the real per-tag report hash each slot.
	TxHash = protocol.TxHash
	// TxBinomial draws transmitter counts binomially (fast, equivalent).
	TxBinomial = protocol.TxBinomial
)

// FCAT population estimators (see FCATConfig.Estimator).
const (
	// EstimatorExact solves the paper's Eq. 12 self-consistently (default).
	EstimatorExact = fcat.EstimatorExact
	// EstimatorClosedForm is the paper's one-shot approximation of Eq. 12.
	EstimatorClosedForm = fcat.EstimatorClosedForm
	// EstimatorEmpty estimates from empty slots (rejected by the paper for
	// its higher variance; kept for ablations).
	EstimatorEmpty = fcat.EstimatorEmpty
)

// NewFCAT returns the framed collision-aware tag identification protocol
// tuned for an ANC decoder that resolves collisions of multiplicity up to
// lambda (paper, Section V). Use NewFCATWith for non-default knobs.
func NewFCAT(lambda int) Protocol { return fcat.New(fcat.Config{Lambda: lambda}) }

// NewFCATWith returns an FCAT instance with explicit configuration.
func NewFCATWith(cfg FCATConfig) Protocol { return fcat.New(cfg) }

// NewSCAT returns the slotted collision-aware tag identification protocol
// (paper, Section IV).
func NewSCAT(lambda int) Protocol { return scat.New(scat.Config{Lambda: lambda}) }

// NewSCATWith returns a SCAT instance with explicit configuration.
func NewSCATWith(cfg SCATConfig) Protocol { return scat.New(cfg) }

// NewDFSA returns the dynamic framed slotted ALOHA baseline.
func NewDFSA() Protocol { return dfsa.New(dfsa.Config{}) }

// NewEDFSA returns the enhanced dynamic framed slotted ALOHA baseline.
func NewEDFSA() Protocol { return edfsa.New(edfsa.Config{}) }

// NewABS returns the adaptive binary splitting (tree) baseline.
func NewABS() Protocol { return treeproto.NewABS() }

// NewCRDSA returns Contention Resolution Diversity Slotted ALOHA, the
// satellite-network collision-resolution scheme the paper discusses in
// Section III-C: two replicas per tag per frame, resolved by iterative
// interference cancellation. The channel's ANC capability (lambda) bounds
// the cancellation depth; use a large lambda to emulate the classic
// full-packet scheme.
func NewCRDSA() Protocol { return crdsa.New(crdsa.Config{}) }

// CRDSAConfig parameterises CRDSA.
type CRDSAConfig = crdsa.Config

// NewCRDSAWith returns a CRDSA instance with explicit configuration.
func NewCRDSAWith(cfg CRDSAConfig) Protocol { return crdsa.New(cfg) }

// MDFSAConfig parameterises MDFSA.
type MDFSAConfig = mdfsa.Config

// NewMDFSA returns multi-packet-reception DFSA: the framed-ALOHA baseline
// upgraded with the ANC record store and the MPR-optimal frame-size rule
// L = backlog/mu*_M for a decode stack that resolves collisions up to
// order m. Pair it with a channel whose Lambda (or Capability.MaxOrder)
// equals m.
func NewMDFSA(m int) Protocol { return mdfsa.New(mdfsa.Config{M: m}) }

// NewMDFSAWith returns an MDFSA instance with explicit configuration.
func NewMDFSAWith(cfg MDFSAConfig) Protocol { return mdfsa.New(cfg) }

// PRALOHAConfig parameterises pseudo-random ALOHA.
type PRALOHAConfig = praloha.Config

// NewPRALOHA returns pseudo-random framed ALOHA (Ricciato & Castiglione):
// tags derive slot choices by hashing identity with the frame counter, so
// the reader can replay the schedule of every tag it knows; frames are
// sized by the MPR rule from the exactly-known outstanding count.
func NewPRALOHA(m int) Protocol { return praloha.New(praloha.Config{M: m}) }

// NewPRALOHAWith returns a PRALOHA instance with explicit configuration.
func NewPRALOHAWith(cfg PRALOHAConfig) Protocol { return praloha.New(cfg) }

// NewAQS returns the adaptive query splitting (tree) baseline as a plain
// protocol (each Run is an independent round).
func NewAQS() Protocol { return treeproto.NewAQS() }

// AQSReader is the stateful AQS reader: RunRound retains the query tree
// between rounds, so periodic re-reads of an unchanged population skip the
// collision-resolution work — AQS's adaptive feature.
type AQSReader = treeproto.AQS

// NewAQSReader returns a stateful AQS reader for periodic inventory
// rounds.
func NewAQSReader() *AQSReader { return treeproto.NewAQS() }

// ByName builds a protocol from its table name: "FCAT-2", "SCAT-3",
// "DFSA", "EDFSA", "MDFSA-3", "PRALOHA-2", "ABS", "AQS", "CRDSA"
// (case-insensitive; the numeric suffix is the decode capability and
// defaults to 2).
func ByName(name string) (Protocol, error) {
	p, err := registry.ByName(name)
	if err != nil {
		return nil, fmt.Errorf("ancrfid: %w", err)
	}
	return p, nil
}

// Run executes a Monte-Carlo campaign of the protocol.
func Run(p Protocol, cfg SimConfig) (SimResult, error) { return sim.Run(p, cfg) }

// RunOnce executes a single deterministic run of the campaign.
func RunOnce(p Protocol, cfg SimConfig, run int) (Metrics, error) {
	return sim.RunOnce(p, cfg, run)
}

// Resumable sessions and continuous-inventory workloads. Every protocol in
// the module implements SessionProtocol: Begin opens a stepwise execution
// whose population can change between steps (Admit/Revoke) and which can
// be checkpointed and resumed (Snapshot/Restore). Driving a fresh session
// to completion is bit-identical to Run — the differential suite proves
// it. See docs/architecture.md.
type (
	// Session is a resumable protocol execution.
	Session = protocol.Session
	// SessionProtocol is a Protocol that can open sessions.
	SessionProtocol = protocol.SessionProtocol
	// SessionCheckpoint is an opaque deep copy of a session's state.
	SessionCheckpoint = protocol.Checkpoint
	// WorkloadConfig is a dynamic-population schedule: Poisson or burst
	// arrivals, fixed or exponential dwell, optional periodic checkpoints.
	WorkloadConfig = workload.Config
	// WorkloadReport is the outcome of one dynamic run, with per-tag
	// lifecycle records and total population accounting.
	WorkloadReport = workload.Report
	// TagRecord is the lifecycle of one tag through a dynamic run.
	TagRecord = workload.TagRecord
	// DynamicSimConfig describes a dynamic-population Monte-Carlo campaign.
	DynamicSimConfig = sim.DynamicConfig
	// DynamicSimResult aggregates a dynamic campaign.
	DynamicSimResult = sim.DynamicResult

	// TraceArrivalEvent reports a tag entering the field (dynamic runs).
	TraceArrivalEvent = obs.ArrivalEvent
	// TraceDepartureEvent reports a tag leaving the field (dynamic runs).
	TraceDepartureEvent = obs.DepartureEvent
	// TraceCheckpointEvent reports a session snapshot being taken.
	TraceCheckpointEvent = obs.CheckpointEvent
)

// ErrCheckpointMismatch is returned by Session.Restore when the checkpoint
// came from a different protocol.
var ErrCheckpointMismatch = protocol.ErrCheckpointMismatch

// AsSession reports whether p supports stepwise execution and returns it
// as a SessionProtocol. All protocols built by this package do.
func AsSession(p Protocol) (SessionProtocol, bool) {
	sp, ok := p.(SessionProtocol)
	return sp, ok
}

// RunDynamic executes a dynamic-population Monte-Carlo campaign: each run
// drives a session of p under cfg.Workload's arrival/departure schedule.
// Workers > 1 parallelises with the same ordered-merge determinism as Run.
func RunDynamic(p SessionProtocol, cfg DynamicSimConfig) (DynamicSimResult, error) {
	return sim.RunDynamic(p, cfg)
}

// RunDynamicOnce executes a single deterministic dynamic run.
func RunDynamicOnce(p SessionProtocol, cfg DynamicSimConfig, run int) (WorkloadReport, error) {
	return sim.RunDynamicOnce(p, cfg, run)
}

// RunWorkload drives one session of p over env's initial population with
// the dynamic schedule cfg; wl supplies the workload's own random stream
// (arrival times, burst IDs, dwell draws), independent of env.RNG.
func RunWorkload(p SessionProtocol, env *Env, wl *RNG, cfg WorkloadConfig) (WorkloadReport, error) {
	return workload.Run(p, env, wl, cfg)
}

// ConveyorWorkload is a single-item belt: tags arrive at rate tags/s and
// stay in the field for dwell.
func ConveyorWorkload(rate float64, dwell, duration time.Duration) WorkloadConfig {
	return workload.Conveyor(rate, dwell, duration)
}

// PortalWorkload is a dock-door scenario: pallets of burst tags at
// epochRate pallets/s, each tag dwelling an exponential time with the
// given mean.
func PortalWorkload(burst int, epochRate float64, meanDwell, duration time.Duration) WorkloadConfig {
	return workload.Portal(burst, epochRate, meanDwell, duration)
}

// LatencyPercentile returns the nearest-rank p-th percentile of the given
// identification latencies.
func LatencyPercentile(lat []time.Duration, p float64) time.Duration {
	return workload.Percentile(lat, p)
}

// Multi-reader fleet simulation. A fleet hosts N readers over M
// interrogation zones on a deterministic discrete-event scheduler:
// adjacent-zone readers interfere per a dBm link budget, coordination
// policies (Colorwave-style TDMA, listen-before-talk) arbitrate the air,
// and tag populations migrate between zones. Fleet runs are bit-identical
// for any worker count, and a one-reader one-zone fleet reproduces the
// single-reader run exactly. See docs/fleet.md.
type (
	// FleetTopology describes one fleet: reader/zone counts, policy, link
	// budget, migration workload and per-reader overrides.
	FleetTopology = fleet.Config
	// FleetReport is the outcome of one fleet run, with per-reader and
	// per-tag records and fleet-wide population accounting.
	FleetReport = fleet.Report
	// FleetReaderReport summarises one reader of a fleet run.
	FleetReaderReport = fleet.ReaderReport
	// FleetTagLifecycle is one tag's journey through the fleet.
	FleetTagLifecycle = fleet.TagLifecycle
	// FleetLinkBudget is the dBm arithmetic of reader-to-reader
	// interference.
	FleetLinkBudget = fleet.LinkBudget
	// FleetPolicy arbitrates when a reader may open a slot.
	FleetPolicy = fleet.Policy
	// FleetGrantContext is what a policy sees when deciding a grant.
	FleetGrantContext = fleet.GrantContext
	// FleetSimConfig describes a multi-reader Monte-Carlo campaign.
	FleetSimConfig = sim.FleetConfig
	// FleetSimResult aggregates a fleet campaign.
	FleetSimResult = sim.FleetResult

	// TraceFleetEvent reports one fleet-scheduler event (blocked slot,
	// interfered slot, zone migration).
	TraceFleetEvent = obs.FleetEvent
)

// ErrFleetMigrationNeedsHorizon is returned when a migrating fleet has no
// time horizon to run against.
var ErrFleetMigrationNeedsHorizon = fleet.ErrMigrationNeedsHorizon

// UncoordinatedPolicy is the baseline fleet policy: every reader transmits
// whenever it has work.
func UncoordinatedPolicy() FleetPolicy { return fleet.Uncoordinated{} }

// TDMAPolicy is Colorwave-style time-division coordination; colors 0 uses
// the fleet's default colour count (the zone ring's chromatic number).
func TDMAPolicy(colors int) FleetPolicy { return fleet.TDMA{Colors: colors} }

// LBTPolicy is listen-before-talk: a reader defers while an interfering
// adjacent-zone carrier covers its slot start.
func LBTPolicy() FleetPolicy { return fleet.LBT{} }

// DefaultFleetLinkBudget returns the warehouse-portal link budget: 30 dBm
// readers, 40 dB adjacent-zone loss, a -90 dBm noise floor and a 10 dB
// interference margin.
func DefaultFleetLinkBudget() FleetLinkBudget { return fleet.DefaultLinkBudget() }

// RunFleet executes a multi-reader Monte-Carlo campaign: each run
// schedules cfg.Fleet's topology over the discrete-event core. Workers > 1
// parallelises across runs with the same ordered-merge determinism as Run;
// cfg.Fleet.Workers additionally parallelises the zone shards inside each
// run.
func RunFleet(p SessionProtocol, cfg FleetSimConfig) (FleetSimResult, error) {
	return sim.RunFleet(p, cfg)
}

// RunFleetOnce executes a single deterministic fleet run.
func RunFleetOnce(p SessionProtocol, cfg FleetSimConfig, run int) (FleetReport, error) {
	return sim.RunFleetOnce(p, cfg, run)
}

// NewRNG returns a deterministic random source.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// Population generates n distinct random tag IDs.
func Population(r *RNG, n int) []TagID { return tagid.Population(r, n) }

// TagIDFromParts builds a structured EPC-style ID from its vendor/manager
// (28 bits), product class (16 bits) and serial (36 bits) fields; read
// them back with TagID.Manager, TagID.Class and TagID.Serial.
func TagIDFromParts(manager uint32, class uint16, serial uint64) TagID {
	return tagid.FromParts(manager, class, serial)
}

// ICodeTiming returns the Philips I-Code air-interface timing the paper's
// evaluation uses (53 kbit/s, 96-bit IDs, ~2.8 ms slots).
func ICodeTiming() Timing { return air.ICode() }

// Gen2Timing returns an ISO 18000-6C / EPC Gen2-style timing model
// (128 kbit/s); the protocol ranking is rate-invariant, only faster.
func Gen2Timing() Timing { return air.Gen2() }

// NewAbstractChannel returns the paper's slot-level channel model.
func NewAbstractChannel(cfg AbstractChannelConfig, r *RNG) Channel {
	return channel.NewAbstract(cfg, r)
}

// NewSignalChannel returns the physical-layer channel model: MSK waveforms,
// AWGN, and genuine interference-cancellation collision resolution.
func NewSignalChannel(cfg SignalChannelConfig, r *RNG) Channel {
	return channel.NewSignal(cfg, r)
}

// Deterministic fault injection and chaos testing. FaultConfig (set on
// SimConfig.Faults, DynamicSimConfig.Faults via the embedded SimConfig, or
// ChaosConfig) enables seed-split fault injection: Gilbert-Elliott burst
// noise, acknowledgement loss, tag mute/stuck-responder failures, decode
// corruption and reader crash-restart. Every fault decision is a pure
// function of (Seed, run index), independent of how many random draws the
// protocol makes, so faulty campaigns are exactly as reproducible as clean
// ones. The zero FaultConfig is a guaranteed no-op: results and traces are
// bit-identical to a build without the fault layer. See docs/robustness.md.
type (
	// FaultConfig selects the fault shapes of a run (zero value = none).
	FaultConfig = fault.Config
	// FaultBurstConfig parameterises Gilbert-Elliott burst noise.
	FaultBurstConfig = fault.Burst
	// FaultInjector is the deterministic per-run fault source (advanced use:
	// build one with NewFaultInjector and wrap a channel for custom Envs).
	FaultInjector = fault.Injector
	// FaultChannel is a channel wrapped with fault injection.
	FaultChannel = fault.Channel
	// ChaosConfig describes a chaos campaign: faults plus a dynamic
	// workload plus crash-recovery checkpointing.
	ChaosConfig = sim.ChaosConfig
	// ChaosReport is the audited outcome of one chaos run.
	ChaosReport = sim.ChaosReport
	// ChaosResult aggregates a chaos campaign.
	ChaosResult = sim.ChaosResult

	// FaultKind labels an injected fault in TraceFaultEvent.
	FaultKind = obs.FaultKind
	// TraceFaultEvent reports one injected fault.
	TraceFaultEvent = obs.FaultEvent
	// TraceQuarantineEvent reports a poisoned collision record being
	// quarantined by the record store's defenses.
	TraceQuarantineEvent = obs.QuarantineEvent
	// TraceRestartEvent reports a reader crash-restart resuming from a
	// checkpoint.
	TraceRestartEvent = obs.RestartEvent
)

// Fault kinds carried by TraceFaultEvent.
const (
	// FaultBurst marks a slot spoiled by Gilbert-Elliott burst noise.
	FaultBurst = obs.FaultBurst
	// FaultAckLoss marks a dropped reader acknowledgement.
	FaultAckLoss = obs.FaultAckLoss
	// FaultMute marks a muted tag's suppressed transmission.
	FaultMute = obs.FaultMute
	// FaultStuck marks a stuck responder transmitting out of protocol.
	FaultStuck = obs.FaultStuck
	// FaultCorruptSingleton marks a singleton read corrupted into a
	// collision-like observation.
	FaultCorruptSingleton = obs.FaultCorruptSingleton
	// FaultCorruptDecode marks a collision decode yielding a bit-flipped ID
	// (caught by the store's CRC quarantine).
	FaultCorruptDecode = obs.FaultCorruptDecode
	// FaultCrash marks a reader crash.
	FaultCrash = obs.FaultCrash
)

// NewFaultInjector derives the deterministic fault source for one run; the
// same (cfg, seed, run) triple always yields the same fault sequence.
func NewFaultInjector(cfg FaultConfig, seed uint64, run int) *FaultInjector {
	return fault.New(cfg, seed, run)
}

// WrapFaultChannel wraps ch with fault injection for custom Envs: set the
// returned channel (after AdmitAll of the initial population) as
// Env.Channel and the injector as Env.Faults.
func WrapFaultChannel(ch Channel, inj *FaultInjector) *FaultChannel {
	return fault.WrapChannel(ch, inj)
}

// RunChaos executes a chaos campaign: fault-injected dynamic runs with
// crash-restart recovery, audited against the inventory invariants (no
// duplicate identifications, no phantom IDs, exact population accounting).
// Workers > 1 parallelises with the same ordered-merge determinism as Run.
func RunChaos(p SessionProtocol, cfg ChaosConfig) (ChaosResult, error) {
	return sim.RunChaos(p, cfg)
}

// RunChaosOnce executes a single deterministic chaos run.
func RunChaosOnce(p SessionProtocol, cfg ChaosConfig, run int) (ChaosReport, error) {
	return sim.RunChaosOnce(p, cfg, run)
}

// OptimalOmega returns (lambda!)^(1/lambda), the report-probability
// constant that maximises useful slots for an ANC decoder of capability
// lambda: 1.414, 1.817, 2.213 for lambda = 2, 3, 4 (paper, Section IV-C).
func OptimalOmega(lambda int) float64 { return analysis.OptimalOmega(lambda) }

// AlohaBound returns 1/(e*T), the throughput bound of ALOHA protocols
// without collision resolution, for the given slot duration.
func AlohaBound(t Timing) float64 { return analysis.AlohaBound(t.Slot().Seconds()) }

// ANCBound returns the collision-aware throughput bound for an ANC decoder
// of capability lambda at the given slot duration.
func ANCBound(t Timing, lambda int) float64 {
	return analysis.ANCBound(t.Slot().Seconds(), lambda)
}

// Fault-tolerant inventory session server (the runtime behind
// cmd/rfidserver): thousands of concurrent protocol sessions behind an
// HTTP API, with durable replay checkpoints, crash recovery that
// quarantines damaged files instead of dying, bounded-queue backpressure,
// per-client rate limits, supervised panic isolation and graceful drain.
// See docs/server.md.
type (
	// ServerConfig tunes an inventory session server.
	ServerConfig = server.Config
	// Server hosts concurrent inventory sessions; mount Handler on an
	// http.Server and stop with Drain.
	Server = server.Server
	// ServerSpec is the deterministic creation recipe of a hosted session.
	ServerSpec = server.Spec
	// DiskFaultConfig injects deterministic checkpoint-write faults
	// (chaos drills).
	DiskFaultConfig = fault.DiskConfig
	// GracefulOptions tunes ServeUntilSignal.
	GracefulOptions = server.GracefulOptions
)

// NewServer opens the checkpoint store, recovers every surviving session
// by deterministic replay, and starts the shard workers.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// ServeUntilSignal serves srv on ln until SIGINT/SIGTERM, then drains
// gracefully — the shared shutdown path of cmd/rfidserver and
// rfidsim -serve.
func ServeUntilSignal(srv *http.Server, ln net.Listener, opts GracefulOptions) error {
	return server.ServeUntilSignal(srv, ln, opts)
}
