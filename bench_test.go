// Benchmarks regenerating the paper's evaluation artefacts.
//
// Each BenchmarkTableN / BenchmarkFigN runs the corresponding experiment
// from internal/experiments at a reduced Monte-Carlo budget so the whole
// suite completes in minutes; cmd/tables regenerates them at the paper's
// full budget (100 runs per data point). Where a benchmark measures a
// single protocol campaign it reports the reading throughput as a custom
// metric (tags/sec) next to the usual ns/op.
//
// Run with:
//
//	go test -bench=. -benchmem
package ancrfid_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"github.com/ancrfid/ancrfid"
	"github.com/ancrfid/ancrfid/internal/experiments"
)

// benchOpts is the reduced Monte-Carlo budget used by the table/figure
// benchmarks.
func benchOpts() experiments.Options {
	return experiments.Options{Runs: 2, Seed: 1}
}

func runExperiment(b *testing.B, id string, opts experiments.Options) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Throughput regenerates Table I (reading throughput of
// FCAT-2/3/4 vs DFSA, EDFSA, ABS, AQS) on a reduced population grid.
func BenchmarkTable1Throughput(b *testing.B) {
	opts := benchOpts()
	opts.Sizes = []int{2000}
	runExperiment(b, "table1", opts)
}

// BenchmarkTable2SlotBreakdown regenerates Table II (empty/singleton/
// collision slots at N = 10000).
func BenchmarkTable2SlotBreakdown(b *testing.B) {
	runExperiment(b, "table2", benchOpts())
}

// BenchmarkTable3ResolvedIDs regenerates Table III (tag IDs recovered from
// collision slots).
func BenchmarkTable3ResolvedIDs(b *testing.B) {
	opts := benchOpts()
	opts.Runs = 1
	runExperiment(b, "table3", opts)
}

// BenchmarkTable4OptimalOmega regenerates Table IV (swept-optimal omega vs
// the computed (lambda!)^(1/lambda)).
func BenchmarkTable4OptimalOmega(b *testing.B) {
	opts := benchOpts()
	opts.Runs = 1
	runExperiment(b, "table4", opts)
}

// BenchmarkFig3EstimatorBias regenerates Fig. 3 (estimator bias, analytic
// Eq. 16 next to Monte-Carlo measurement).
func BenchmarkFig3EstimatorBias(b *testing.B) {
	runExperiment(b, "fig3", benchOpts())
}

// BenchmarkFig4ExpectedSlots regenerates Fig. 4 (expected slot counts per
// frame; purely analytic).
func BenchmarkFig4ExpectedSlots(b *testing.B) {
	runExperiment(b, "fig4", benchOpts())
}

// BenchmarkFig5OmegaSweep regenerates Fig. 5 (FCAT throughput vs omega).
func BenchmarkFig5OmegaSweep(b *testing.B) {
	opts := benchOpts()
	opts.Runs = 1
	runExperiment(b, "fig5", opts)
}

// BenchmarkFig6FrameSize regenerates Fig. 6 (FCAT throughput vs frame
// size).
func BenchmarkFig6FrameSize(b *testing.B) {
	opts := benchOpts()
	opts.Runs = 1
	runExperiment(b, "fig6", opts)
}

// benchProtocol runs one campaign per iteration and reports the measured
// reading throughput as a custom metric.
func benchProtocol(b *testing.B, p ancrfid.Protocol, cfg ancrfid.SimConfig) {
	b.Helper()
	var tput float64
	for i := 0; i < b.N; i++ {
		res, err := ancrfid.Run(p, cfg)
		if err != nil {
			b.Fatal(err)
		}
		tput = res.Throughput.Mean
	}
	b.ReportMetric(tput, "tags/sec")
}

// BenchmarkProtocols measures each protocol's simulation cost and reading
// throughput at N = 5000.
func BenchmarkProtocols(b *testing.B) {
	cfg := ancrfid.SimConfig{Tags: 5000, Runs: 2, Seed: 1}
	for _, name := range []string{"FCAT-2", "FCAT-3", "FCAT-4", "SCAT-2", "DFSA", "EDFSA", "ABS", "AQS"} {
		p, err := ancrfid.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		c := cfg
		switch name {
		case "FCAT-3":
			c.Lambda = 3
		case "FCAT-4":
			c.Lambda = 4
		}
		b.Run(name, func(b *testing.B) { benchProtocol(b, p, c) })
	}
}

// BenchmarkAblationTxModel compares the exact hash-driven transmission
// model against the binomial fast path (DESIGN.md design choice 1): same
// distribution, very different simulation cost.
func BenchmarkAblationTxModel(b *testing.B) {
	for name, model := range map[string]ancrfid.SimConfig{
		"binomial": {Tags: 3000, Runs: 2, Seed: 1, TxModel: ancrfid.TxBinomial},
		"hash":     {Tags: 3000, Runs: 2, Seed: 1, TxModel: ancrfid.TxHash},
	} {
		b.Run(name, func(b *testing.B) { benchProtocol(b, ancrfid.NewFCAT(2), model) })
	}
}

// BenchmarkAblationEstimator compares FCAT's population estimators
// (DESIGN.md design choice 2): the self-consistent inversion (default), the
// paper's one-shot closed form, the rejected empty-slot estimator, the
// last-frame-only variant (no averaging) and the perfect-knowledge oracle.
func BenchmarkAblationEstimator(b *testing.B) {
	cfg := ancrfid.SimConfig{Tags: 5000, Runs: 2, Seed: 1}
	variants := map[string]ancrfid.FCATConfig{
		"exact":       {Lambda: 2},
		"closed-form": {Lambda: 2, Estimator: ancrfid.EstimatorClosedForm},
		"empty-slots": {Lambda: 2, Estimator: ancrfid.EstimatorEmpty},
		"last-frame":  {Lambda: 2, LastFrameOnly: true},
		"oracle":      {Lambda: 2, OracleEstimate: true},
	}
	for name, fc := range variants {
		b.Run(name, func(b *testing.B) {
			benchProtocol(b, ancrfid.NewFCATWith(fc), cfg)
		})
	}
}

// BenchmarkAblationAckEncoding compares SCAT (full 96-bit ID
// acknowledgements for resolved records) against FCAT (23-bit slot
// indices) — the Section V-A optimisation.
func BenchmarkAblationAckEncoding(b *testing.B) {
	cfg := ancrfid.SimConfig{Tags: 3000, Runs: 2, Seed: 1}
	b.Run("scat-full-id", func(b *testing.B) { benchProtocol(b, ancrfid.NewSCAT(2), cfg) })
	b.Run("fcat-slot-index", func(b *testing.B) { benchProtocol(b, ancrfid.NewFCAT(2), cfg) })
}

// BenchmarkSignalChannel runs the full protocol over real MSK waveform
// mixing and cancellation (small population: every slot synthesises and
// decodes waveforms).
func BenchmarkSignalChannel(b *testing.B) {
	cfg := ancrfid.SimConfig{
		Tags: 100, Runs: 1, Seed: 1,
		NewChannel: func(r *ancrfid.RNG) ancrfid.Channel {
			return ancrfid.NewSignalChannel(ancrfid.SignalChannelConfig{MaxCancel: 2}, r)
		},
	}
	benchProtocol(b, ancrfid.NewFCAT(2), cfg)
}

// Micro-benchmarks of the physical-layer primitives.

func BenchmarkModulateID(b *testing.B) {
	r := ancrfid.NewRNG(1)
	id := ancrfid.Population(r, 1)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ancrfid.ModulateID(id, ancrfid.SamplesPerBit)
	}
}

func BenchmarkDecodeWaveform(b *testing.B) {
	r := ancrfid.NewRNG(2)
	id := ancrfid.Population(r, 1)[0]
	w := ancrfid.ModulateID(id, ancrfid.SamplesPerBit)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ancrfid.DecodeWaveform(w, ancrfid.SamplesPerBit); !ok {
			b.Fatal("decode failed")
		}
	}
}

func BenchmarkCancellation(b *testing.B) {
	r := ancrfid.NewRNG(3)
	ids := ancrfid.Population(r, 2)
	refA := ancrfid.ModulateID(ids[0], ancrfid.SamplesPerBit)
	refB := ancrfid.ModulateID(ids[1], ancrfid.SamplesPerBit)
	mixed := ancrfid.MixWaveforms(
		ancrfid.ScaleWaveform(refA, complex(0.8, 0.2)),
		ancrfid.ScaleWaveform(refB, complex(-0.3, 0.5)),
	)
	refs := []ancrfid.Waveform{refA}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gains := ancrfid.EstimateGains(mixed, refs)
		residual := ancrfid.CancelWaveforms(mixed, refs, gains)
		if _, ok := ancrfid.DecodeWaveform(residual, ancrfid.SamplesPerBit); !ok {
			b.Fatal("cancellation failed")
		}
	}
}

// BenchmarkTracerOverhead measures the cost of the observability layer on
// the standard FCAT-2 campaign: "off" is the nil-tracer fast path (must be
// indistinguishable from the pre-instrumentation baseline), "hooks" is an
// empty Hooks tracer (the cost of event fan-out alone) and "metrics" folds
// every event into a registry.
func BenchmarkTracerOverhead(b *testing.B) {
	base := ancrfid.SimConfig{Tags: 5000, Runs: 2, Seed: 1}
	b.Run("off", func(b *testing.B) { benchProtocol(b, ancrfid.NewFCAT(2), base) })
	b.Run("hooks", func(b *testing.B) {
		cfg := base
		cfg.Tracer = &ancrfid.TracerHooks{}
		benchProtocol(b, ancrfid.NewFCAT(2), cfg)
	})
	b.Run("metrics", func(b *testing.B) {
		cfg := base
		cfg.Metrics = ancrfid.NewRegistry()
		benchProtocol(b, ancrfid.NewFCAT(2), cfg)
	})
}

// TestNilTracerZeroAlloc guards the tracing fast path: with Env.Tracer nil,
// every emission helper must be a branch and nothing else — zero
// allocations per call.
func TestNilTracerZeroAlloc(t *testing.T) {
	r := ancrfid.NewRNG(1)
	id := ancrfid.Population(r, 1)[0]
	env := &ancrfid.Env{}
	allocs := testing.AllocsPerRun(100, func() {
		env.NotifySlot(ancrfid.SlotEvent{Seq: 1, Transmitters: 2, Identified: 3})
		env.NotifyIdentified(id, true)
		env.TraceRunStart("FCAT-2")
		env.TraceRunEnd("FCAT-2", ancrfid.Metrics{}, nil)
		env.TraceFrame(ancrfid.TraceFrameEvent{Frame: 1, Size: 64})
		env.TraceAdvert(ancrfid.TraceAdvertEvent{Seq: 1, P: 0.5})
		env.TraceAck(ancrfid.TraceAckEvent{Seq: 1, ID: id, Kind: ancrfid.AckDirect, Delivered: true})
		env.TraceEstimate(ancrfid.TraceEstimateEvent{Frame: 1, Estimate: 100})
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer emission allocated %.1f times per run, want 0", allocs)
	}
}

// campaignBenchConfig is the fixed campaign measured by the worker-scaling
// benchmark and the BENCH_campaign.json emitter: large enough that the
// per-run work dominates pool overhead, small enough for CI.
func campaignBenchConfig(workers int) ancrfid.SimConfig {
	return ancrfid.SimConfig{Tags: 2000, Runs: 16, Seed: 1, Workers: workers}
}

// campaignWorkerCounts returns the worker counts the scaling benchmark
// measures: sequential, 4, and all CPUs (deduplicated, ascending).
func campaignWorkerCounts() []int {
	counts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// BenchmarkCampaignWorkers measures the parallel campaign runner's scaling:
// the identical FCAT-2 campaign at 1, 4 and GOMAXPROCS workers. The output
// is bit-identical across sub-benchmarks (see docs/parallelism.md); only
// the wall clock may differ. tags/sec here is wall-clock campaign
// throughput (population x runs / elapsed), not the protocol's reading
// throughput. Wired into the CI bench gate with a fixed iteration count
// (-benchtime=3x -count=5, like BenchmarkFleetCampaign), so the gated
// number is a min-over-reps of a fixed workload rather than whatever
// iteration count the timer negotiated under ambient machine load.
func BenchmarkCampaignWorkers(b *testing.B) {
	p := ancrfid.NewFCAT(2)
	for _, w := range campaignWorkerCounts() {
		cfg := campaignBenchConfig(w)
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ancrfid.Run(p, cfg); err != nil {
					b.Fatal(err)
				}
			}
			simulated := float64(cfg.Tags*cfg.Runs) * float64(b.N)
			b.ReportMetric(simulated/b.Elapsed().Seconds(), "tags/sec")
		})
	}
}

// TestEmitCampaignBench writes the campaign-scaling measurements as JSON to
// the path named by BENCH_CAMPAIGN_OUT (skipped when unset). CI uploads the
// file as the BENCH_campaign.json artifact; run locally with:
//
//	BENCH_CAMPAIGN_OUT=BENCH_campaign.json go test -run TestEmitCampaignBench .
func TestEmitCampaignBench(t *testing.T) {
	out := os.Getenv("BENCH_CAMPAIGN_OUT")
	if out == "" {
		t.Skip("BENCH_CAMPAIGN_OUT not set")
	}
	p := ancrfid.NewFCAT(2)
	type row struct {
		Workers             int     `json:"workers"`
		NsPerOp             float64 `json:"ns_per_op"`
		TagsPerSec          float64 `json:"tags_per_sec"`
		SpeedupVsSequential float64 `json:"speedup_vs_sequential"`
	}
	report := struct {
		Bench      string `json:"bench"`
		GoVersion  string `json:"go_version"`
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		Tags       int    `json:"tags"`
		Runs       int    `json:"runs"`
		Results    []row  `json:"results"`
	}{
		Bench:      "campaign",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Tags:       campaignBenchConfig(1).Tags,
		Runs:       campaignBenchConfig(1).Runs,
	}
	var seqNs float64
	for _, w := range campaignWorkerCounts() {
		cfg := campaignBenchConfig(w)
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ancrfid.Run(p, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if w == 1 {
			seqNs = ns
		}
		speedup := 0.0
		if seqNs > 0 {
			speedup = seqNs / ns
		}
		report.Results = append(report.Results, row{
			Workers:             w,
			NsPerOp:             ns,
			TagsPerSec:          float64(cfg.Tags*cfg.Runs) / (ns / 1e9),
			SpeedupVsSequential: speedup,
		})
		t.Logf("workers=%d: %.0f ns/op, %.0f tags/s, %.2fx", w, ns,
			float64(cfg.Tags*cfg.Runs)/(ns/1e9), speedup)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkExtensionExperiments runs the extension experiments (beyond the
// paper's tables) at a reduced budget: the CRDSA comparison, the tag-energy
// table and the identification-progress curves.
func BenchmarkExtensionExperiments(b *testing.B) {
	for _, id := range []string{"crdsa", "energy", "estimators", "noise", "progress"} {
		b.Run(id, func(b *testing.B) {
			opts := benchOpts()
			opts.Runs = 1
			runExperiment(b, id, opts)
		})
	}
}
