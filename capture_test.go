package ancrfid_test

import (
	"testing"

	"github.com/ancrfid/ancrfid"
)

// TestCaptureImprovesFCATThroughput is the capture-effect acceptance
// criterion: enabling capture decoding on the abstract channel at equal
// lambda must strictly improve FCAT's mean throughput — every captured
// slot turns a pure collision into a direct read plus a cheaper residual
// record, so identification can only get faster.
func TestCaptureImprovesFCATThroughput(t *testing.T) {
	base := ancrfid.SimConfig{Tags: 2000, Runs: 6, Seed: 42, Lambda: 2}

	off, err := ancrfid.Run(ancrfid.NewFCAT(2), base)
	if err != nil {
		t.Fatal(err)
	}

	capOn := base
	capOn.Capability = ancrfid.ChannelCapability{MaxOrder: 2, CaptureSINRdB: 3}
	on, err := ancrfid.Run(ancrfid.NewFCAT(2), capOn)
	if err != nil {
		t.Fatal(err)
	}

	if on.Throughput.Mean <= off.Throughput.Mean {
		t.Fatalf("capture-on throughput %.1f <= capture-off %.1f tags/s",
			on.Throughput.Mean, off.Throughput.Mean)
	}
	if on.TotalSlots.Mean >= off.TotalSlots.Mean {
		t.Fatalf("capture-on slots %.1f >= capture-off %.1f",
			on.TotalSlots.Mean, off.TotalSlots.Mean)
	}
	t.Logf("throughput: capture-off %.1f, capture-on %.1f tags/s (+%.1f%%)",
		off.Throughput.Mean, on.Throughput.Mean,
		100*(on.Throughput.Mean/off.Throughput.Mean-1))
}

// TestCaptureZeroCapabilityIdentical pins the degeneracy contract at the
// campaign level: a zero Capability on SimConfig must reproduce the
// legacy Lambda campaign bit-for-bit, run by run.
func TestCaptureZeroCapabilityIdentical(t *testing.T) {
	base := ancrfid.SimConfig{Tags: 800, Runs: 4, Seed: 7, Lambda: 2}
	a, err := ancrfid.Run(ancrfid.NewFCAT(2), base)
	if err != nil {
		t.Fatal(err)
	}
	withCap := base
	withCap.Capability = ancrfid.ChannelCapability{}
	b, err := ancrfid.Run(ancrfid.NewFCAT(2), withCap)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Runs {
		if a.Runs[i] != b.Runs[i] {
			t.Fatalf("run %d diverged under zero capability:\n%+v\n%+v", i, a.Runs[i], b.Runs[i])
		}
	}
}
