package ancrfid_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/ancrfid/ancrfid"
)

func TestPerfScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("perf probe")
	}
	for _, tc := range []struct {
		name string
		p    ancrfid.Protocol
		n    int
	}{
		{"FCAT-2", ancrfid.NewFCAT(2), 10000},
		{"FCAT-2", ancrfid.NewFCAT(2), 20000},
		{"DFSA", ancrfid.NewDFSA(), 20000},
		{"EDFSA", ancrfid.NewEDFSA(), 20000},
		{"ABS", ancrfid.NewABS(), 20000},
		{"AQS", ancrfid.NewAQS(), 20000},
	} {
		start := time.Now()
		m, err := ancrfid.RunOnce(tc.p, ancrfid.SimConfig{Tags: tc.n, Seed: 3}, 0)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("%-7s N=%-6d wall=%-12v tput=%.1f slots=%d\n", tc.name, tc.n, time.Since(start), m.Throughput(), m.TotalSlots())
	}
}
