package ancrfid_test

import (
	"math/cmplx"
	"testing"

	"github.com/ancrfid/ancrfid"
)

func TestInventoryFacade(t *testing.T) {
	r := ancrfid.NewRNG(21)
	field := ancrfid.RandomField(r, 800, 60)
	positions := ancrfid.PlanGrid(60, 50)
	rep, err := ancrfid.ReadInventory(field, ancrfid.InventoryConfig{
		Protocol:  ancrfid.NewFCAT(2),
		Positions: positions,
		Radius:    50,
		RNG:       r,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coverage(field) != 1 {
		t.Fatalf("coverage %.2f", rep.Coverage(field))
	}
	if missing := rep.Missing(nil); len(missing) != 0 {
		t.Fatal("nothing expected, nothing missing")
	}
	unknown := ancrfid.Population(ancrfid.NewRNG(99), 3)
	if missing := rep.Missing(unknown); len(missing) != 3 {
		t.Fatalf("all foreign IDs should be missing, got %d", len(missing))
	}
}

func TestNewFieldFacade(t *testing.T) {
	items := []ancrfid.Item{
		{ID: ancrfid.TagIDFromParts(1, 2, 3), X: 1, Y: 1},
		{ID: ancrfid.TagIDFromParts(1, 2, 4), X: 50, Y: 50},
	}
	field := ancrfid.NewField(items)
	if got := field.InRange(ancrfid.Position{X: 0, Y: 0}, 5); len(got) != 1 {
		t.Fatalf("InRange found %d", len(got))
	}
	if field.Size() != 2 {
		t.Fatalf("Size = %d", field.Size())
	}
}

func TestCRDSAFacade(t *testing.T) {
	p, err := ancrfid.ByName("crdsa")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ancrfid.Run(p, ancrfid.SimConfig{Tags: 400, Runs: 2, Seed: 3, Lambda: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput.Mean <= 0 {
		t.Fatal("no throughput")
	}
	custom := ancrfid.NewCRDSAWith(ancrfid.CRDSAConfig{Replicas: 3})
	if custom.Name() != "CRDSA" {
		t.Fatal("wrong name")
	}
}

func TestSCATPreEstimateFacade(t *testing.T) {
	p := ancrfid.NewSCATWith(ancrfid.SCATConfig{
		Lambda:            2,
		PreEstimate:       true,
		PreEstimateConfig: ancrfid.PreEstimateConfig{FrameSize: 32, Frames: 4},
	})
	res, err := ancrfid.Run(p, ancrfid.SimConfig{Tags: 500, Runs: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Runs {
		if m.Identified() != 500 {
			t.Fatalf("identified %d of 500", m.Identified())
		}
	}
}

func TestPhyFacadeOffsets(t *testing.T) {
	r := ancrfid.NewRNG(5)
	id := ancrfid.Population(r, 1)[0]
	w := ancrfid.ScaleWaveform(ancrfid.ModulateID(id, ancrfid.SamplesPerBit), cmplx.Rect(0.9, 0.4))
	shifted := ancrfid.ApplyFrequencyOffset(w, 0.02)
	got, ok := ancrfid.DecodeWaveform(shifted, ancrfid.SamplesPerBit)
	if !ok || got != id {
		t.Fatal("decode under offset failed")
	}
	if !ancrfid.EnvelopeFlat(shifted, 0.01) {
		t.Fatal("single rotated signal should keep a flat envelope")
	}
}

func TestSlotObserverFacade(t *testing.T) {
	r := ancrfid.NewRNG(6)
	events := 0
	env := &ancrfid.Env{
		RNG:     r,
		Tags:    ancrfid.Population(r, 200),
		Channel: ancrfid.NewAbstractChannel(ancrfid.AbstractChannelConfig{Lambda: 2}, r),
		Timing:  ancrfid.ICodeTiming(),
		OnSlot: func(ev ancrfid.SlotEvent) {
			events++
			if ev.Identified < 0 || ev.Transmitters < 0 {
				t.Fatal("bad event")
			}
		},
	}
	m, err := ancrfid.NewFCAT(2).Run(env)
	if err != nil {
		t.Fatal(err)
	}
	if events != m.TotalSlots() {
		t.Fatalf("observer saw %d events over %d slots", events, m.TotalSlots())
	}
}

func TestGen2TimingFacade(t *testing.T) {
	icode, gen2 := ancrfid.ICodeTiming(), ancrfid.Gen2Timing()
	if gen2.Slot() >= icode.Slot() {
		t.Fatal("Gen2 slots should be shorter")
	}
	res, err := ancrfid.Run(ancrfid.NewFCAT(2), ancrfid.SimConfig{
		Tags: 300, Runs: 2, Seed: 7, Timing: gen2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput.Mean < 2*ancrfid.AlohaBound(icode) {
		t.Fatalf("Gen2 FCAT throughput %v too low", res.Throughput.Mean)
	}
}
