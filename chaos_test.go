package ancrfid_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/ancrfid/ancrfid"
)

// chaosShapes are the fault compositions the chaos matrix sweeps. Each
// composes several shapes so their interactions are exercised, not just the
// shapes in isolation.
var chaosShapes = []struct {
	name   string
	faults ancrfid.FaultConfig
}{
	{"ackloss+burst", ancrfid.FaultConfig{
		AckLoss: 0.2,
		Burst:   ancrfid.FaultBurstConfig{Duty: 0.12, MeanBad: 4},
	}},
	{"mute+departures", ancrfid.FaultConfig{
		MuteProb: 0.15,
		AckLoss:  0.05,
	}},
	{"stuck+corrupt", ancrfid.FaultConfig{
		StuckProb:        0.1,
		CorruptSingleton: 0.1,
		CorruptDecode:    0.3,
	}},
	{"crash-restart", ancrfid.FaultConfig{
		AckLoss:    0.1,
		Burst:      ancrfid.FaultBurstConfig{Duty: 0.08, MeanBad: 4},
		CrashEvery: 96,
	}},
}

// chaosConfig builds the campaign for one matrix cell.
func chaosConfig(chanKind string, faults ancrfid.FaultConfig, workers int) ancrfid.ChaosConfig {
	cfg := ancrfid.ChaosConfig{
		Config: ancrfid.SimConfig{Tags: 30, Runs: 2, Seed: 23, Workers: workers},
		Workload: ancrfid.WorkloadConfig{
			Duration:      1500 * time.Millisecond,
			ArrivalRate:   25,
			DepartureRate: 0.3,
		},
	}
	cfg.Faults = faults
	if chanKind == "signal" {
		cfg.Tags = 10
		cfg.Workload.ArrivalRate = 8
		cfg.Workload.Duration = time.Second
		cfg.NewChannel = func(r *ancrfid.RNG) ancrfid.Channel {
			return ancrfid.NewSignalChannel(ancrfid.SignalChannelConfig{
				NoiseSigma: 0.03, MaxCancel: 2,
			}, r)
		}
	}
	return cfg
}

// auditChaos asserts the hard inventory invariants on every run of a chaos
// campaign.
func auditChaos(t *testing.T, res ancrfid.ChaosResult, wantCrashes bool) {
	t.Helper()
	crashes := 0
	faults := 0
	for i := range res.Runs {
		rep := &res.Runs[i]
		if rep.Phantoms != 0 {
			t.Errorf("run %d: %d phantom IDs identified", i, rep.Phantoms)
		}
		if rep.DupIdents != 0 {
			t.Errorf("run %d: %d duplicate identifications", i, rep.DupIdents)
		}
		if !rep.Accounted() {
			t.Errorf("run %d: accounting broken: admitted %d != identified %d + departed-unread %d + still-active %d",
				i, rep.Admitted, rep.Identified, rep.DepartedUnread, rep.ActiveUnread)
		}
		if rep.Admitted == 0 || rep.Identified == 0 {
			t.Errorf("run %d: degenerate run (admitted %d, identified %d)", i, rep.Admitted, rep.Identified)
		}
		faults += rep.FaultsInjected
		crashes += rep.Crashes
	}
	// Some protocol/shape pairs dodge individual runs (a protocol that
	// never acknowledges sees no ACK loss; bursts need a busy slot to
	// land on), so the exercised-at-all check is campaign-level.
	if faults == 0 {
		t.Error("campaign injected no faults; the shape is not exercising anything")
	}
	if wantCrashes && crashes == 0 {
		t.Error("crash shape produced no crash-restarts")
	}
}

// TestChaosMatrix is the acceptance sweep: every protocol x both channels x
// all fault shapes, each at workers 1 and 8. Each cell must satisfy the
// inventory invariants, and the parallel campaign must be bit-identical to
// the sequential one.
func TestChaosMatrix(t *testing.T) {
	for _, proto := range allProtocols {
		for _, chanKind := range []string{"abstract", "signal"} {
			for _, shape := range chaosShapes {
				t.Run(fmt.Sprintf("%s/%s/%s", proto, chanKind, shape.name), func(t *testing.T) {
					t.Parallel()
					p, err := ancrfid.ByName(proto)
					if err != nil {
						t.Fatal(err)
					}
					sp, ok := ancrfid.AsSession(p)
					if !ok {
						t.Fatalf("%s does not implement SessionProtocol", proto)
					}

					seq, err := ancrfid.RunChaos(sp, chaosConfig(chanKind, shape.faults, 1))
					if err != nil {
						t.Fatalf("sequential campaign: %v", err)
					}
					auditChaos(t, seq, shape.faults.CrashEvery > 0)

					par, err := ancrfid.RunChaos(sp, chaosConfig(chanKind, shape.faults, 8))
					if err != nil {
						t.Fatalf("parallel campaign: %v", err)
					}
					if !reflect.DeepEqual(seq.Runs, par.Runs) {
						t.Fatal("workers=8 chaos campaign differs from workers=1")
					}
				})
			}
		}
	}
}

// TestChaosCrashRestartAccounting drives a crash-heavy inventory and checks
// that every restart resumes from a mid-inventory checkpoint with the exact
// accounting intact: identifications rolled past a crash are re-earned, not
// double-counted, and the final books balance.
func TestChaosCrashRestartAccounting(t *testing.T) {
	sp, _ := ancrfid.AsSession(ancrfid.NewFCAT(2))
	cfg := chaosConfig("abstract", ancrfid.FaultConfig{
		AckLoss:    0.15,
		CrashEvery: 64, // raised to >= 2x checkpoint cadence by the harness
	}, 1)
	cfg.Runs = 3
	cfg.Workload.Duration = 2 * time.Second

	res, err := ancrfid.RunChaos(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	auditChaos(t, res, true)
	for i := range res.Runs {
		rep := &res.Runs[i]
		if rep.Crashes < 2 {
			t.Errorf("run %d: only %d crashes; the schedule should hit several", i, rep.Crashes)
		}
		if rep.Checkpoints <= rep.Crashes {
			t.Errorf("run %d: %d checkpoints for %d crashes; marks must outpace crashes for net progress",
				i, rep.Checkpoints, rep.Crashes)
		}
		// Crash replays re-execute slots, so wall work strictly exceeds the
		// surviving timeline's slot count.
		if rep.WallSteps == 0 {
			t.Errorf("run %d: no wall steps recorded", i)
		}
	}
}

// TestChaosDisabledMatchesDynamic: with a zero FaultConfig the chaos driver
// is just another dynamic driver — same scripts, same invariants — and must
// identify tags without injecting anything.
func TestChaosDisabledMatchesDynamic(t *testing.T) {
	sp, _ := ancrfid.AsSession(ancrfid.NewFCAT(2))
	cfg := chaosConfig("abstract", ancrfid.FaultConfig{}, 1)
	res, err := ancrfid.RunChaos(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Runs {
		rep := &res.Runs[i]
		if rep.FaultsInjected != 0 || rep.Quarantined != 0 || rep.Crashes != 0 {
			t.Errorf("run %d: fault-free chaos run reported fault activity: %d faults, %d quarantined, %d crashes",
				i, rep.FaultsInjected, rep.Quarantined, rep.Crashes)
		}
		if rep.Phantoms != 0 || rep.DupIdents != 0 || !rep.Accounted() {
			t.Errorf("run %d: invariants violated without faults", i)
		}
		if rep.Identified == 0 {
			t.Errorf("run %d: identified nothing", i)
		}
	}
}

// TestChaosSevereDegradation: cranking severity up must degrade throughput,
// never break invariants — the graceful-degradation promise.
func TestChaosSevereDegradation(t *testing.T) {
	sp, _ := ancrfid.AsSession(ancrfid.NewSCAT(2))
	mild := chaosConfig("abstract", ancrfid.FaultConfig{AckLoss: 0.05}, 1)
	harsh := chaosConfig("abstract", ancrfid.FaultConfig{
		AckLoss:          0.4,
		Burst:            ancrfid.FaultBurstConfig{Duty: 0.3, MeanBad: 6},
		MuteProb:         0.1,
		CorruptSingleton: 0.2,
		CorruptDecode:    0.4,
	}, 1)

	mres, err := ancrfid.RunChaos(sp, mild)
	if err != nil {
		t.Fatal(err)
	}
	hres, err := ancrfid.RunChaos(sp, harsh)
	if err != nil {
		t.Fatal(err)
	}
	auditChaos(t, mres, false)
	auditChaos(t, hres, false)
	if hres.Identified.Mean >= mres.Identified.Mean {
		t.Errorf("harsh faults identified %.1f tags on average, mild %.1f; severity must cost throughput",
			hres.Identified.Mean, mres.Identified.Mean)
	}
	if hres.Quarantined.Mean == 0 {
		t.Error("harsh corruption produced no quarantines; the CRC defenses never fired")
	}
}
