// Command benchgate turns `go test -bench` output into JSON and gates CI
// on benchmark regressions against a checked-in baseline.
//
// Usage:
//
//	go test -bench 'Fig4|CampaignWorkers' -benchtime=1x -count=5 -run '^$' . > bench.txt
//	benchgate -in bench.txt -out bench.json                       # parse only
//	benchgate -in bench.txt -baseline .github/bench-baseline.json # parse + gate
//	benchgate -in bench.txt -baseline ... -update                 # refresh baseline
//
// Parsing keeps the minimum ns/op over the -count repetitions of each
// benchmark (the least-noisy estimator of its true cost) and strips the
// -GOMAXPROCS suffix from names so results compare across machines. When
// the run was produced with -benchmem, allocs/op is captured the same way
// (minimum over repetitions) into a separate "allocs" baseline section.
// The gate fails (exit 1) when any baseline benchmark is missing from the
// current run or slower than baseline by more than -tolerance (default
// 15%); an allocs baseline of 0 is exact — any measured allocation fails,
// since 15% of zero would otherwise gate nothing. Benchmarks present only
// in the current run are reported but do not fail the gate; add them to
// the baseline with -update.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

// Report is the JSON form of a parsed benchmark run.
type Report struct {
	// Benchmarks maps benchmark name (without the -GOMAXPROCS suffix) to
	// its minimum ns/op across repetitions.
	Benchmarks map[string]float64 `json:"benchmarks"`
	// Allocs maps benchmark name to its minimum allocs/op across
	// repetitions; populated only for runs produced with -benchmem.
	Allocs map[string]float64 `json:"allocs,omitempty"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		in        = fs.String("in", "-", "benchmark output to parse (\"-\" = stdin)")
		out       = fs.String("out", "", "write the parsed results as JSON to this file (\"-\" = stdout)")
		baseline  = fs.String("baseline", "", "baseline JSON to gate against")
		tolerance = fs.Float64("tolerance", 0.15, "allowed slowdown before the gate fails (0.15 = 15%)")
		update    = fs.Bool("update", false, "rewrite the baseline from the current results instead of gating")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var src io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	rep, err := Parse(src)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark results in %s", *in)
	}

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if *out == "-" {
			if _, err := stdout.Write(data); err != nil {
				return err
			}
		} else if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
	}

	if *baseline == "" {
		return nil
	}
	if *update {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(*baseline, append(data, '\n'), 0o644)
	}
	base, err := readBaseline(*baseline)
	if err != nil {
		return err
	}
	return Gate(stdout, base, rep, *tolerance)
}

func readBaseline(path string) (Report, error) {
	var base Report
	data, err := os.ReadFile(path)
	if err != nil {
		return base, err
	}
	if err := json.Unmarshal(data, &base); err != nil {
		return base, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return base, nil
}

// benchLine matches one result line of `go test -bench` output:
// "BenchmarkName-8   10   123456 ns/op   ...". The -8 GOMAXPROCS suffix is
// optional (sub-benchmarks of serial benchmarks may lack it).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// allocsField matches the allocs/op field -benchmem appends to a result
// line.
var allocsField = regexp.MustCompile(`\s([0-9.]+) allocs/op`)

// Parse extracts benchmark results, keeping the minimum ns/op (and, when
// present, the minimum allocs/op) across repeated runs of the same
// benchmark (go test -count=N emits N lines).
func Parse(r io.Reader) (Report, error) {
	rep := Report{Benchmarks: map[string]float64{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return rep, fmt.Errorf("line %q: %w", sc.Text(), err)
		}
		if prev, ok := rep.Benchmarks[m[1]]; !ok || ns < prev {
			rep.Benchmarks[m[1]] = ns
		}
		if am := allocsField.FindStringSubmatch(sc.Text()); am != nil {
			allocs, err := strconv.ParseFloat(am[1], 64)
			if err != nil {
				return rep, fmt.Errorf("line %q: %w", sc.Text(), err)
			}
			if rep.Allocs == nil {
				rep.Allocs = map[string]float64{}
			}
			if prev, ok := rep.Allocs[m[1]]; !ok || allocs < prev {
				rep.Allocs[m[1]] = allocs
			}
		}
	}
	return rep, sc.Err()
}

// Gate compares current results against the baseline and returns an error
// naming every regression: a baseline benchmark that is missing, or slower
// than baseline by more than the tolerance fraction.
func Gate(w io.Writer, base, cur Report, tolerance float64) error {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	for _, name := range names {
		want := base.Benchmarks[name]
		got, ok := cur.Benchmarks[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from current run", name))
			continue
		}
		ratio := got / want
		status := "ok"
		if ratio > 1+tolerance {
			status = "REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%+.1f%%, tolerance %.0f%%)",
				name, got, want, (ratio-1)*100, tolerance*100))
		}
		fmt.Fprintf(w, "%-50s %12.0f ns/op  baseline %12.0f  %+6.1f%%  %s\n",
			name, got, want, (ratio-1)*100, status)
	}
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Fprintf(w, "%-50s not in baseline (add with -update)\n", name)
		}
	}

	allocNames := make([]string, 0, len(base.Allocs))
	for name := range base.Allocs {
		allocNames = append(allocNames, name)
	}
	sort.Strings(allocNames)
	for _, name := range allocNames {
		want := base.Allocs[name]
		got, ok := cur.Allocs[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: allocs/op missing from current run (run with -benchmem)", name))
			continue
		}
		status := "ok"
		switch {
		case want == 0:
			// A zero-alloc baseline is exact: any allocation is a leak the
			// fractional tolerance would wave through.
			if got > 0 {
				status = "REGRESSION"
				failures = append(failures, fmt.Sprintf("%s: %.0f allocs/op vs baseline 0", name, got))
			}
		case got/want > 1+tolerance:
			status = "REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: %.0f allocs/op vs baseline %.0f (%+.1f%%, tolerance %.0f%%)",
				name, got, want, (got/want-1)*100, tolerance*100))
		}
		fmt.Fprintf(w, "%-50s %12.0f allocs/op baseline %10.0f  %s\n", name, got, want, status)
	}

	if len(failures) > 0 {
		return fmt.Errorf("benchmark gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}
