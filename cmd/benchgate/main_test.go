package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: github.com/ancrfid/ancrfid
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig4ExpectedSlots-4         	       1	   120000 ns/op
BenchmarkFig4ExpectedSlots-4         	       1	   100000 ns/op
BenchmarkFig4ExpectedSlots-4         	       1	   110000 ns/op
BenchmarkCampaignWorkers/workers=1-4 	       1	 60000000 ns/op	  530000 tags/sec
BenchmarkCampaignWorkers/workers=1-4 	       1	 62000000 ns/op	  510000 tags/sec
BenchmarkCampaignWorkers/workers=4   	       1	 25000000 ns/op	 1280000 tags/sec
PASS
ok  	github.com/ancrfid/ancrfid	1.5s
`

func TestParseMinOverCountAndSuffixStrip(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkFig4ExpectedSlots":         100000, // min of 3 reps
		"BenchmarkCampaignWorkers/workers=1": 60000000,
		"BenchmarkCampaignWorkers/workers=4": 25000000,
	}
	if len(rep.Benchmarks) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(rep.Benchmarks), len(want), rep.Benchmarks)
	}
	for name, ns := range want {
		if got := rep.Benchmarks[name]; got != ns {
			t.Errorf("%s = %v, want %v", name, got, ns)
		}
	}
}

const sampleBenchMem = `goos: linux
goarch: amd64
BenchmarkCampaign-4      	       1	 30000000 ns/op	  500000 B/op	    4000 allocs/op
BenchmarkCampaign-4      	       1	 31000000 ns/op	  500000 B/op	    4100 allocs/op
BenchmarkSlotLoop-4      	       1	  2000000 ns/op	      16 B/op	       0 allocs/op
PASS
`

func TestParseAllocs(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleBenchMem))
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Allocs["BenchmarkCampaign"]; got != 4000 {
		t.Errorf("BenchmarkCampaign allocs = %v, want 4000 (min over reps)", got)
	}
	if got := rep.Allocs["BenchmarkSlotLoop"]; got != 0 {
		t.Errorf("BenchmarkSlotLoop allocs = %v, want 0", got)
	}
	// Lines without -benchmem fields leave Allocs untouched.
	plain, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Allocs != nil {
		t.Errorf("plain run parsed allocs %v, want none", plain.Allocs)
	}
}

func TestGateAllocs(t *testing.T) {
	base := Report{
		Benchmarks: map[string]float64{"BenchmarkA": 100},
		Allocs:     map[string]float64{"BenchmarkA": 1000, "BenchmarkZero": 0},
	}
	cases := []struct {
		name   string
		bench  map[string]float64
		allocs map[string]float64
		ok     bool
	}{
		{"identical", map[string]float64{"BenchmarkA": 100, "BenchmarkZero": 5}, map[string]float64{"BenchmarkA": 1000, "BenchmarkZero": 0}, true},
		{"within tolerance", map[string]float64{"BenchmarkA": 100, "BenchmarkZero": 5}, map[string]float64{"BenchmarkA": 1140, "BenchmarkZero": 0}, true},
		{"alloc regression", map[string]float64{"BenchmarkA": 100, "BenchmarkZero": 5}, map[string]float64{"BenchmarkA": 1200, "BenchmarkZero": 0}, false},
		{"zero baseline is exact", map[string]float64{"BenchmarkA": 100, "BenchmarkZero": 5}, map[string]float64{"BenchmarkA": 1000, "BenchmarkZero": 1}, false},
		{"allocs missing", map[string]float64{"BenchmarkA": 100, "BenchmarkZero": 5}, map[string]float64{"BenchmarkZero": 0}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var sb strings.Builder
			err := Gate(&sb, base, Report{Benchmarks: c.bench, Allocs: c.allocs}, 0.15)
			if (err == nil) != c.ok {
				t.Fatalf("Gate err = %v, want ok=%v\n%s", err, c.ok, sb.String())
			}
		})
	}
}

func TestGate(t *testing.T) {
	base := Report{Benchmarks: map[string]float64{"BenchmarkA": 100, "BenchmarkB": 200}}
	cases := []struct {
		name string
		cur  map[string]float64
		ok   bool
	}{
		{"identical", map[string]float64{"BenchmarkA": 100, "BenchmarkB": 200}, true},
		{"within tolerance", map[string]float64{"BenchmarkA": 114, "BenchmarkB": 229}, true},
		{"faster", map[string]float64{"BenchmarkA": 50, "BenchmarkB": 100}, true},
		{"regression", map[string]float64{"BenchmarkA": 116, "BenchmarkB": 200}, false},
		{"missing", map[string]float64{"BenchmarkA": 100}, false},
		{"extra benchmark passes", map[string]float64{"BenchmarkA": 100, "BenchmarkB": 200, "BenchmarkC": 1}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var sb strings.Builder
			err := Gate(&sb, base, Report{Benchmarks: c.cur}, 0.15)
			if (err == nil) != c.ok {
				t.Fatalf("Gate err = %v, want ok=%v\n%s", err, c.ok, sb.String())
			}
		})
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	baseline := filepath.Join(dir, "baseline.json")
	jsonOut := filepath.Join(dir, "bench.json")

	// First pass: no baseline yet — create it with -update.
	var sb strings.Builder
	if err := run([]string{"-in", in, "-out", jsonOut, "-baseline", baseline, "-update"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{baseline, jsonOut} {
		if data, err := os.ReadFile(path); err != nil || !strings.Contains(string(data), "BenchmarkFig4ExpectedSlots") {
			t.Fatalf("%s not written correctly: %v", path, err)
		}
	}

	// Second pass: identical results must pass the gate.
	if err := run([]string{"-in", in, "-baseline", baseline}, &sb); err != nil {
		t.Fatalf("identical run failed the gate: %v", err)
	}

	// Third pass: a 2x regression must fail it.
	slow := strings.ReplaceAll(sampleBench, "   100000 ns/op", "   400000 ns/op")
	slow = strings.ReplaceAll(slow, "   110000 ns/op", "   400000 ns/op")
	slow = strings.ReplaceAll(slow, "   120000 ns/op", "   400000 ns/op")
	slowIn := filepath.Join(dir, "slow.txt")
	if err := os.WriteFile(slowIn, []byte(slow), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-in", slowIn, "-baseline", baseline}, &sb)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkFig4ExpectedSlots") {
		t.Fatalf("regression not caught: %v", err)
	}
}

func TestRunEmptyInput(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(in, []byte("PASS\nok x 1s\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-in", in}, &sb); err == nil {
		t.Fatal("empty benchmark output should fail")
	}
}

// TestRunParseFailure pins the CI contract that a malformed ns/op field is
// a hard error (non-zero exit), not a silently skipped line: a gate run
// over garbage must never report success.
func TestRunParseFailure(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "garbled.txt")
	garbled := "BenchmarkFig4ExpectedSlots-4 \t 1 \t 1.2.3 ns/op\n"
	if err := os.WriteFile(in, []byte(garbled), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	err := run([]string{"-in", in}, &sb)
	if err == nil || !strings.Contains(err.Error(), "1.2.3") {
		t.Fatalf("garbled ns/op should fail with the offending line, got %v", err)
	}
}

// TestRunCorruptBaseline: a truncated or hand-mangled baseline JSON must
// fail the gate rather than gate against nothing.
func TestRunCorruptBaseline(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	baseline := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(baseline, []byte(`{"benchmarks": {`), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	err := run([]string{"-in", in, "-baseline", baseline}, &sb)
	if err == nil || !strings.Contains(err.Error(), "parsing baseline") {
		t.Fatalf("corrupt baseline should fail the gate, got %v", err)
	}
}
