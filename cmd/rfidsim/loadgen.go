// Load-generator mode: rfidsim -loadgen drives an rfidserver instance
// over its HTTP API — the client half of the fault-tolerance story. It
// creates sessions, steps them concurrently while honouring the server's
// backpressure (429 + Retry-After), admits extra tags mid-run to exercise
// the eager-durability path, and in -loadgen-verify mode audits what a
// restarted server recovered: every session present, the accounting
// identity (admitted == identified + departed-unread + still-active)
// intact, zero duplicate identifications.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ancrfid/ancrfid/internal/rng"
	"github.com/ancrfid/ancrfid/internal/tagid"
)

type loadgenConfig struct {
	base     string // server base URL, no trailing slash
	sessions int
	steps    int
	verify   bool
	protocol string
	tags     int
	seed     uint64
	workers  int
}

// loadgenChurn is how many extra tags each session admits mid-run.
const loadgenChurn = 4

// stepBatch is the step count per request — big enough to amortise HTTP,
// small enough that backpressure stays responsive.
const stepBatch = 64

func loadgenSessionID(i int) string { return fmt.Sprintf("lg-%04d", i) }

func runLoadgen(cfg loadgenConfig) error {
	if cfg.sessions <= 0 {
		return fmt.Errorf("loadgen: sessions must be positive")
	}
	client := &lgClient{base: cfg.base, http: &http.Client{Timeout: 30 * time.Second}}
	if cfg.verify {
		return lgVerify(client, cfg)
	}
	return lgDrive(client, cfg)
}

// lgDrive creates and steps the fleet of sessions.
func lgDrive(c *lgClient, cfg loadgenConfig) error {
	var (
		wg       sync.WaitGroup
		failures atomic.Int64
		stepsRun atomic.Int64
		done     atomic.Int64
	)
	workers := cfg.workers
	if workers <= 0 {
		workers = 8
	}
	ids := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ids {
				if err := lgDriveOne(c, cfg, i, &stepsRun, &done); err != nil {
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "rfidsim: loadgen: session %s: %v\n", loadgenSessionID(i), err)
				}
			}
		}()
	}
	start := time.Now()
	for i := 0; i < cfg.sessions; i++ {
		ids <- i
	}
	close(ids)
	wg.Wait()
	fmt.Printf("loadgen: %d sessions, %d done, %d steps in %v (%d failures)\n",
		cfg.sessions, done.Load(), stepsRun.Load(), time.Since(start).Round(time.Millisecond), failures.Load())
	if n := failures.Load(); n > 0 {
		return fmt.Errorf("loadgen: %d sessions failed", n)
	}
	return nil
}

func lgDriveOne(c *lgClient, cfg loadgenConfig, i int, stepsRun, done *atomic.Int64) error {
	id := loadgenSessionID(i)
	create := map[string]any{
		"id": id,
		"spec": map[string]any{
			"protocol": cfg.protocol,
			"seed":     cfg.seed + uint64(i),
			"tags":     cfg.tags,
		},
	}
	status, body, err := c.post("/v1/sessions", create)
	if err != nil {
		return err
	}
	// 409 means the session survived an earlier loadgen run (e.g. after a
	// server restart); keep driving it.
	if status != http.StatusCreated && status != http.StatusConflict {
		return fmt.Errorf("create: HTTP %d: %s", status, body)
	}
	// Mid-run churn: admit a few extra tags, drawn deterministically from
	// a seed the initial population does not use.
	churnAt := cfg.steps / 2
	admitted := false
	for total := 0; total < cfg.steps; {
		if !admitted && total >= churnAt {
			extra := tagid.Population(rng.New(cfg.seed^0xc0ffee+uint64(i)), loadgenChurn)
			hexIDs := make([]string, len(extra))
			for j, t := range extra {
				hexIDs[j] = fmt.Sprintf("%x", t[:])
			}
			st, body, err := c.post("/v1/sessions/"+id+"/admit", map[string]any{"ids": hexIDs})
			if err != nil {
				return err
			}
			if st != http.StatusOK {
				return fmt.Errorf("admit: HTTP %d: %s", st, body)
			}
			admitted = true
		}
		n := stepBatch
		if rem := cfg.steps - total; rem < n {
			n = rem
		}
		st, body, err := c.post("/v1/sessions/"+id+"/step", map[string]any{"steps": n})
		if err != nil {
			return err
		}
		if st != http.StatusOK {
			return fmt.Errorf("step: HTTP %d: %s", st, body)
		}
		var resp struct {
			Executed int    `json:"executed"`
			Done     bool   `json:"done"`
			Failed   string `json:"failed"`
		}
		if err := json.Unmarshal(body, &resp); err != nil {
			return fmt.Errorf("step response: %w", err)
		}
		if resp.Failed != "" {
			return fmt.Errorf("step: session failed: %s", resp.Failed)
		}
		total += resp.Executed
		stepsRun.Add(int64(resp.Executed))
		if resp.Done && admitted {
			done.Add(1)
			return nil
		}
	}
	return nil
}

// lgVerify audits every loadgen session on a (possibly restarted) server.
func lgVerify(c *lgClient, cfg loadgenConfig) error {
	violations := 0
	for i := 0; i < cfg.sessions; i++ {
		id := loadgenSessionID(i)
		st, body, err := c.get("/v1/sessions/" + id)
		if err != nil {
			return err
		}
		if st != http.StatusOK {
			fmt.Fprintf(os.Stderr, "rfidsim: loadgen: verify %s: HTTP %d: %s\n", id, st, body)
			violations++
			continue
		}
		var s struct {
			Admitted   int `json:"admitted"`
			Identified int `json:"identified"`
			Departed   int `json:"departed_unread"`
			Active     int `json:"still_active"`
			DupIdents  int `json:"dup_idents"`
			Phantoms   int `json:"phantoms"`
		}
		if err := json.Unmarshal(body, &s); err != nil {
			return fmt.Errorf("verify %s: %w", id, err)
		}
		if s.Admitted != s.Identified+s.Departed+s.Active {
			fmt.Fprintf(os.Stderr, "rfidsim: loadgen: verify %s: accounting broken: %d admitted != %d identified + %d departed + %d active\n",
				id, s.Admitted, s.Identified, s.Departed, s.Active)
			violations++
		}
		if s.DupIdents != 0 || s.Phantoms != 0 {
			fmt.Fprintf(os.Stderr, "rfidsim: loadgen: verify %s: %d duplicate idents, %d phantoms\n", id, s.DupIdents, s.Phantoms)
			violations++
		}
		// Cross-check the ident list itself: unique, and as many as the
		// status claims.
		st, body, err = c.get("/v1/sessions/" + id + "/idents")
		if err != nil {
			return err
		}
		if st != http.StatusOK {
			fmt.Fprintf(os.Stderr, "rfidsim: loadgen: verify %s: idents: HTTP %d\n", id, st)
			violations++
			continue
		}
		var il struct {
			Idents []string `json:"idents"`
		}
		if err := json.Unmarshal(body, &il); err != nil {
			return fmt.Errorf("verify %s idents: %w", id, err)
		}
		seen := make(map[string]bool, len(il.Idents))
		for _, h := range il.Idents {
			if seen[h] {
				fmt.Fprintf(os.Stderr, "rfidsim: loadgen: verify %s: duplicate ident %s\n", id, h)
				violations++
			}
			seen[h] = true
		}
		if len(il.Idents) != s.Identified {
			fmt.Fprintf(os.Stderr, "rfidsim: loadgen: verify %s: %d idents listed, status says %d\n", id, len(il.Idents), s.Identified)
			violations++
		}
	}
	if violations > 0 {
		return fmt.Errorf("loadgen: verify: %d violations across %d sessions", violations, cfg.sessions)
	}
	fmt.Printf("loadgen: verify: %d sessions OK (accounting exact, zero duplicate idents)\n", cfg.sessions)
	return nil
}

// lgClient is a minimal API client that honours the server's
// backpressure: 429 responses are retried after the advertised
// Retry-After, 503 (draining) after a short pause, with a bounded retry
// budget so a wedged server fails the run instead of hanging it.
type lgClient struct {
	base string
	http *http.Client
}

const lgMaxRetries = 30

func (c *lgClient) post(path string, body any) (int, []byte, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	return c.do(func() (*http.Response, error) {
		req, err := http.NewRequest(http.MethodPost, c.base+path, bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Client-ID", "rfidsim-loadgen")
		return c.http.Do(req)
	})
}

func (c *lgClient) get(path string) (int, []byte, error) {
	return c.do(func() (*http.Response, error) {
		req, err := http.NewRequest(http.MethodGet, c.base+path, nil)
		if err != nil {
			return nil, err
		}
		req.Header.Set("X-Client-ID", "rfidsim-loadgen")
		return c.http.Do(req)
	})
}

func (c *lgClient) do(send func() (*http.Response, error)) (int, []byte, error) {
	var lastStatus int
	for attempt := 0; attempt <= lgMaxRetries; attempt++ {
		resp, err := send()
		if err != nil {
			return 0, nil, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return resp.StatusCode, nil, err
		}
		lastStatus = resp.StatusCode
		switch resp.StatusCode {
		case http.StatusTooManyRequests:
			wait := time.Second
			if s := resp.Header.Get("Retry-After"); s != "" {
				if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
					wait = time.Duration(secs) * time.Second
				}
			}
			time.Sleep(wait)
		case http.StatusServiceUnavailable:
			time.Sleep(500 * time.Millisecond)
		default:
			return resp.StatusCode, body, nil
		}
	}
	return lastStatus, nil, fmt.Errorf("gave up after %d backpressure retries (last HTTP %d)", lgMaxRetries, lastStatus)
}
