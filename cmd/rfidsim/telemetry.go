// Telemetry endpoint behind the -serve flag: a minimal HTTP plane exposing
// the live campaign — Prometheus metrics, a health probe and expvar — while
// the simulation runs. The registry's atomic totals and the health monitor's
// snapshot are safe to read concurrently with the campaign workers, so the
// endpoint observes the run mid-flight without perturbing it.
package main

import (
	"encoding/json"
	"expvar"
	"net/http"

	"github.com/ancrfid/ancrfid"
)

// newTelemetryServer routes the telemetry plane:
//
//	/metrics     Prometheus text exposition of the metrics registry
//	/healthz     JSON health snapshot (HTTP 503 when unhealthy)
//	/debug/vars  Go expvar (runtime memstats etc.)
//
// health may be nil; /healthz then reports a bare 200 (no monitor attached).
func newTelemetryServer(reg *ancrfid.Registry, health *ancrfid.HealthMonitor) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = ancrfid.WritePrometheus(w, reg)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if health == nil {
			_, _ = w.Write([]byte(`{"healthy":true}` + "\n"))
			return
		}
		snap := health.Snapshot()
		if !snap.Healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		_ = enc.Encode(snap)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
