package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestRunBasic(t *testing.T) {
	if err := run([]string{"-protocol", "FCAT-2", "-tags", "200", "-runs", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBaseline(t *testing.T) {
	if err := run([]string{"-protocol", "DFSA", "-tags", "150", "-runs", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoisyAbstract(t *testing.T) {
	if err := run([]string{"-protocol", "FCAT-3", "-tags", "150", "-runs", "1",
		"-punresolvable", "0.5", "-pcorrupt", "0.1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSignalChannel(t *testing.T) {
	if err := run([]string{"-protocol", "FCAT-2", "-channel", "signal",
		"-tags", "60", "-runs", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-protocol", "NOPE"},
		{"-channel", "quantum", "-tags", "10"},
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestRunGen2AndAckLoss(t *testing.T) {
	if err := run([]string{"-protocol", "FCAT-2", "-tags", "150", "-runs", "1",
		"-timing", "gen2", "-ackloss", "0.3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCRDSA(t *testing.T) {
	if err := run([]string{"-protocol", "CRDSA", "-tags", "150", "-runs", "1", "-lambda", "8"}); err != nil {
		t.Fatal(err)
	}
}

// knownEvents is the JSONL schema's closed event-name set; a new event name
// must be added here and to docs/observability.md.
var knownEvents = map[string]bool{
	"run_start": true, "run_end": true, "frame": true, "advert": true,
	"slot": true, "identify": true, "ack": true, "record": true,
	"cascade": true, "resolve": true, "estimate": true,
	"arrival": true, "departure": true, "checkpoint": true,
	"fault": true, "quarantine": true, "restart": true,
}

func TestRunTraceJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := run([]string{"-protocol", "FCAT-2", "-tags", "100", "-runs", "2",
		"-trace", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lines int
	var starts, ends int
	for sc.Scan() {
		lines++
		var ev struct {
			V   int    `json:"v"`
			Ev  string `json:"ev"`
			Run int    `json:"run"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", lines, err, sc.Text())
		}
		if ev.V != 1 {
			t.Fatalf("line %d: schema version %d, want 1", lines, ev.V)
		}
		if !knownEvents[ev.Ev] {
			t.Fatalf("line %d: unknown event %q", lines, ev.Ev)
		}
		if ev.Run < 0 || ev.Run > 1 {
			t.Fatalf("line %d: run index %d out of range", lines, ev.Run)
		}
		switch ev.Ev {
		case "run_start":
			starts++
		case "run_end":
			ends++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("empty trace")
	}
	if starts != 2 || ends != 2 {
		t.Fatalf("got %d run_start / %d run_end events, want 2 / 2", starts, ends)
	}
}

// TestRunTraceGolden pins the exact JSONL bytes of a tiny deterministic
// campaign. A diff here means the trace schema or the simulation's RNG draw
// order changed; regenerate with UPDATE_GOLDEN=1 go test ./cmd/rfidsim -run
// Golden and bump obs.SchemaVersion if the change is not purely additive.
func TestRunTraceGolden(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := run([]string{"-protocol", "FCAT-2", "-tags", "6", "-runs", "1",
		"-seed", "7", "-trace", path}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace.golden.jsonl")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace differs from %s (regenerate with UPDATE_GOLDEN=1)\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

// TestRunTraceWorkersIdentical checks the CLI end to end: the same campaign
// traced with one worker and with four must write byte-identical JSONL and
// metrics files.
func TestRunTraceWorkersIdentical(t *testing.T) {
	dir := t.TempDir()
	files := func(workers string) (string, string) {
		trace := filepath.Join(dir, "trace-"+workers+".jsonl")
		metrics := filepath.Join(dir, "metrics-"+workers+".txt")
		if err := run([]string{"-protocol", "FCAT-2", "-tags", "120", "-runs", "6",
			"-seed", "5", "-ackloss", "0.1", "-workers", workers,
			"-trace", trace, "-metrics", metrics}); err != nil {
			t.Fatal(err)
		}
		return trace, metrics
	}
	t1, m1 := files("1")
	t4, m4 := files("4")
	for _, pair := range [][2]string{{t1, t4}, {m1, m4}} {
		a, err := os.ReadFile(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if len(a) == 0 || !bytes.Equal(a, b) {
			t.Errorf("%s and %s differ (%d vs %d bytes)", pair[0], pair[1], len(a), len(b))
		}
	}
}

func TestRunMetricsOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.txt")
	if err := run([]string{"-protocol", "SCAT-2", "-tags", "120", "-runs", "2",
		"-metrics", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("empty metrics dump")
	}
	values := make(map[string]float64)
	for _, line := range lines {
		key, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("metrics line %q is not \"key value\"", line)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("metrics line %q: value does not parse: %v", line, err)
		}
		values[key] = f
	}
	if values["runs.completed"] != 2 {
		t.Fatalf("runs.completed = %v, want 2", values["runs.completed"])
	}
	if values["ids.direct"]+values["ids.resolved"] != 2*120 {
		t.Fatalf("ids.direct+ids.resolved = %v, want %d",
			values["ids.direct"]+values["ids.resolved"], 2*120)
	}
}

func TestRunTimelineAndProgress(t *testing.T) {
	path := filepath.Join(t.TempDir(), "timeline.txt")
	if err := run([]string{"-protocol", "DFSA", "-tags", "80", "-runs", "1",
		"-timeline", path, "-progress"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "run DFSA tags=80") {
		t.Fatalf("timeline missing run header:\n%.400s", data)
	}
	if !strings.Contains(string(data), "run end:") {
		t.Fatalf("timeline missing run end:\n%.400s", data)
	}
}

func TestRunBadTiming(t *testing.T) {
	if err := run([]string{"-timing", "warp", "-tags", "10"}); err == nil {
		t.Fatal("unknown timing should fail")
	}
}

// captureStdout redirects os.Stdout around fn and returns what it printed.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	data, err := io.ReadAll(r)
	r.Close()
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestRunChaosMode(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-protocol", "FCAT-2", "-chaos", "-tags", "30", "-runs", "2",
			"-arrival-rate", "25", "-departure-rate", "0.3", "-duration", "1s",
			"-fault-ack-loss", "0.15", "-fault-burst-duty", "0.1", "-fault-crash-every", "96"})
	})
	if err != nil {
		t.Fatalf("chaos run failed: %v\noutput:\n%s", err, out)
	}
	for _, want := range []string{
		"chaos mode",
		"accounting      admitted",
		"invariants      phantom IDs 0, duplicate identifications 0, accounting violations 0",
		"throughput",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("chaos output missing %q:\n%s", want, out)
		}
	}
}

// TestRunChaosNoProgressPartial: a shape no protocol can make progress
// against (every tag mute) burns its slot budget without identifying
// anything and must fail with ErrNoProgress — yet still print the failing
// run's partial report and the campaign accounting.
func TestRunChaosNoProgressPartial(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-protocol", "FCAT-2", "-chaos", "-tags", "20", "-runs", "2",
			"-duration", "300ms", "-max-slots", "20", "-fault-mute", "1"})
	})
	if err == nil {
		t.Fatalf("all-mute chaos run should fail with no progress; output:\n%s", out)
	}
	if !strings.Contains(err.Error(), "no progress") &&
		!strings.Contains(err.Error(), "slot budget") {
		t.Errorf("error %q does not mention the budget/no-progress cause", err)
	}
	for _, want := range []string{"run 0 FAILED after", "accounting      admitted"} {
		if !strings.Contains(out, want) {
			t.Errorf("partial-result output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSeveritySweep(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-sweep-severity", "2", "-tags", "200", "-runs", "2", "-seed", "7"})
	})
	if err != nil {
		t.Fatalf("severity sweep failed: %v\noutput:\n%s", err, out)
	}
	if !strings.Contains(out, "severity sweep") {
		t.Fatalf("missing sweep header:\n%s", out)
	}
	var rows [][]string
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) == 7 {
			if _, err := strconv.ParseFloat(f[0], 64); err == nil {
				rows = append(rows, f)
			}
		}
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 sweep rows, got %d:\n%s", len(rows), out)
	}
	first := func(col int, r []string) float64 {
		v, err := strconv.ParseFloat(r[col], 64)
		if err != nil {
			t.Fatalf("row %v column %d: %v", r, col, err)
		}
		return v
	}
	for col := 3; col <= 4; col++ {
		if lo, hi := first(col, rows[len(rows)-1]), first(col, rows[0]); lo >= hi {
			t.Errorf("column %d: throughput %.1f at max severity not below %.1f at zero", col, lo, hi)
		}
	}
	// Health-score columns stay within [0, 100] at every severity.
	for _, r := range rows {
		for col := 5; col <= 6; col++ {
			if v := first(col, r); v < 0 || v > 100 {
				t.Errorf("column %d: health score %v out of [0,100] in row %v", col, v, r)
			}
		}
	}
}
