package main

import "testing"

func TestRunBasic(t *testing.T) {
	if err := run([]string{"-protocol", "FCAT-2", "-tags", "200", "-runs", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBaseline(t *testing.T) {
	if err := run([]string{"-protocol", "DFSA", "-tags", "150", "-runs", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoisyAbstract(t *testing.T) {
	if err := run([]string{"-protocol", "FCAT-3", "-tags", "150", "-runs", "1",
		"-punresolvable", "0.5", "-pcorrupt", "0.1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSignalChannel(t *testing.T) {
	if err := run([]string{"-protocol", "FCAT-2", "-channel", "signal",
		"-tags", "60", "-runs", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-protocol", "NOPE"},
		{"-channel", "quantum", "-tags", "10"},
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestRunGen2AndAckLoss(t *testing.T) {
	if err := run([]string{"-protocol", "FCAT-2", "-tags", "150", "-runs", "1",
		"-timing", "gen2", "-ackloss", "0.3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCRDSA(t *testing.T) {
	if err := run([]string{"-protocol", "CRDSA", "-tags", "150", "-runs", "1", "-lambda", "8"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTrace(t *testing.T) {
	if err := run([]string{"-protocol", "FCAT-2", "-tags", "100", "-runs", "1", "-trace"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-protocol", "DFSA", "-trace", "-tags", "50"}); err == nil {
		t.Fatal("-trace with a non-FCAT protocol should fail")
	}
}

func TestRunBadTiming(t *testing.T) {
	if err := run([]string{"-timing", "warp", "-tags", "10"}); err == nil {
		t.Fatal("unknown timing should fail")
	}
}
