package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ancrfid/ancrfid"
)

// prometheusGolden pins the exact Prometheus text exposition of a fixed
// small campaign (FCAT-2, 25 tags, 1 run, seed 3). It is a format contract:
// any byte that changes here changes what every scraper in the field sees,
// so changes must be deliberate. Regenerate by running the same campaign
// through ancrfid.WritePrometheus.
const prometheusGolden = `# TYPE rfid_acks_lost_total counter
rfid_acks_lost_total 0
# TYPE rfid_acks_sent_total counter
rfid_acks_sent_total 25
# TYPE rfid_adverts_total counter
rfid_adverts_total 4
# TYPE rfid_cascade_steps_total counter
rfid_cascade_steps_total 25
# TYPE rfid_checkpoints_total counter
rfid_checkpoints_total 0
# TYPE rfid_estimator_updates_total counter
rfid_estimator_updates_total 5
# TYPE rfid_frames_total counter
rfid_frames_total 4
# TYPE rfid_hist_cascade_depth histogram
rfid_hist_cascade_depth_bucket{le="0"} 0
rfid_hist_cascade_depth_bucket{le="1"} 8
rfid_hist_cascade_depth_bucket{le="3"} 12
rfid_hist_cascade_depth_bucket{le="+Inf"} 12
rfid_hist_cascade_depth_sum 16
rfid_hist_cascade_depth_count 12
# TYPE rfid_hist_record_multiplicity histogram
rfid_hist_record_multiplicity_bucket{le="0"} 0
rfid_hist_record_multiplicity_bucket{le="1"} 0
rfid_hist_record_multiplicity_bucket{le="3"} 17
rfid_hist_record_multiplicity_bucket{le="7"} 67
rfid_hist_record_multiplicity_bucket{le="15"} 68
rfid_hist_record_multiplicity_bucket{le="31"} 69
rfid_hist_record_multiplicity_bucket{le="+Inf"} 69
rfid_hist_record_multiplicity_sum 316
rfid_hist_record_multiplicity_count 69
# TYPE rfid_hist_tx_per_slot histogram
rfid_hist_tx_per_slot_bucket{le="0"} 42
rfid_hist_tx_per_slot_bucket{le="1"} 55
rfid_hist_tx_per_slot_bucket{le="3"} 72
rfid_hist_tx_per_slot_bucket{le="7"} 122
rfid_hist_tx_per_slot_bucket{le="15"} 123
rfid_hist_tx_per_slot_bucket{le="31"} 124
rfid_hist_tx_per_slot_bucket{le="+Inf"} 124
rfid_hist_tx_per_slot_sum 329
rfid_hist_tx_per_slot_count 124
# TYPE rfid_ids_direct_total counter
rfid_ids_direct_total 13
# TYPE rfid_ids_resolved_total counter
rfid_ids_resolved_total 12
# TYPE rfid_records_created_total counter
rfid_records_created_total 69
# TYPE rfid_records_resolved_total counter
rfid_records_resolved_total 12
# TYPE rfid_records_spent_total counter
rfid_records_spent_total 0
# TYPE rfid_runs_completed_total counter
rfid_runs_completed_total 1
# TYPE rfid_runs_failed_total counter
rfid_runs_failed_total 0
# TYPE rfid_runs_started_total counter
rfid_runs_started_total 1
# TYPE rfid_sketch_cascade_depth summary
rfid_sketch_cascade_depth{quantile="0.5"} 1
rfid_sketch_cascade_depth{quantile="0.9"} 2
rfid_sketch_cascade_depth{quantile="0.95"} 2
rfid_sketch_cascade_depth{quantile="0.99"} 2
rfid_sketch_cascade_depth_sum 16
rfid_sketch_cascade_depth_count 12
# TYPE rfid_sketch_ident_latency_us summary
rfid_sketch_ident_latency_us{quantile="0.5"} 137491
rfid_sketch_ident_latency_us{quantile="0.9"} 285835
rfid_sketch_ident_latency_us{quantile="0.95"} 285835
rfid_sketch_ident_latency_us{quantile="0.99"} 300127
rfid_sketch_ident_latency_us_sum 3953176
rfid_sketch_ident_latency_us_count 25
# TYPE rfid_slots_collision_total counter
rfid_slots_collision_total 69
# TYPE rfid_slots_empty_total counter
rfid_slots_empty_total 42
# TYPE rfid_slots_singleton_total counter
rfid_slots_singleton_total 13
# TYPE rfid_tags_arrived_total counter
rfid_tags_arrived_total 0
# TYPE rfid_tags_departed_total counter
rfid_tags_departed_total 0
# TYPE rfid_tags_departed_unread_total counter
rfid_tags_departed_unread_total 0
# TYPE rfid_tx_total counter
rfid_tx_total 329
`

// goldenRegistry runs the golden campaign and returns its registry.
func goldenRegistry(t *testing.T) *ancrfid.Registry {
	t.Helper()
	p, err := ancrfid.ByName("FCAT-2")
	if err != nil {
		t.Fatal(err)
	}
	reg := ancrfid.NewRegistry()
	if _, err := ancrfid.Run(p, ancrfid.SimConfig{Tags: 25, Runs: 1, Seed: 3, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestPrometheusGolden pins the /metrics payload byte for byte.
func TestPrometheusGolden(t *testing.T) {
	var buf strings.Builder
	if _, err := ancrfid.WritePrometheus(&buf, goldenRegistry(t)); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != prometheusGolden {
		t.Errorf("Prometheus exposition drifted from golden.\n--- got\n%s\n--- want\n%s", got, prometheusGolden)
	}
}

// TestTelemetryServer exercises the -serve handler end to end over
// httptest: the Prometheus exposition, the health probe (both states) and
// expvar.
func TestTelemetryServer(t *testing.T) {
	reg := goldenRegistry(t)
	health := ancrfid.NewHealthMonitor(ancrfid.HealthConfig{})
	srv := httptest.NewServer(newTelemetryServer(reg, health))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 32<<10)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), sb.String()
	}

	code, ctype, body := get("/metrics")
	if code != 200 || body != prometheusGolden {
		t.Errorf("/metrics: code %d, body drifted from golden", code)
	}
	if !strings.Contains(ctype, "text/plain") || !strings.Contains(ctype, "0.0.4") {
		t.Errorf("/metrics content type %q lacks the exposition version", ctype)
	}

	code, _, body = get("/healthz")
	if code != 200 {
		t.Errorf("/healthz on a healthy monitor: code %d, want 200", code)
	}
	var snap ancrfid.HealthSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/healthz body is not JSON: %v\n%s", err, body)
	}
	if !snap.Healthy || snap.Score != 100 {
		t.Errorf("healthy monitor snapshot: %+v", snap)
	}

	// Degrade the monitor past the healthy threshold and probe again.
	for i := 0; i < 3; i++ {
		health.RunStart(ancrfid.TraceRunStartEvent{})
		health.RunEnd(ancrfid.TraceRunEndEvent{Err: "boom"})
	}
	code, _, _ = get("/healthz")
	if code != 503 {
		t.Errorf("/healthz on a degraded monitor: code %d, want 503", code)
	}

	code, _, body = get("/debug/vars")
	if code != 200 || !json.Valid([]byte(body)) {
		t.Errorf("/debug/vars: code %d, valid JSON %v", code, json.Valid([]byte(body)))
	}
}

// TestRunSpansOutput: the -spans flag writes a Perfetto-loadable JSON array
// whose stream ends with the campaign span.
func TestRunSpansOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.json")
	if err := run([]string{"-protocol", "SCAT-2", "-tags", "60", "-runs", "2",
		"-seed", "5", "-spans", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("spans output is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no span events written")
	}
	last := events[len(events)-1]
	if last["name"] != "campaign" {
		t.Errorf("last event %v, want the campaign span", last["name"])
	}
	runs := 0
	for _, ev := range events {
		if name, _ := ev["name"].(string); strings.HasPrefix(name, "run ") {
			runs++
		}
	}
	if runs != 2 {
		t.Errorf("%d run spans in the trace, want 2", runs)
	}
}

// TestRunServeFlag: a campaign with -serve on an ephemeral port runs to
// completion (the endpoint itself is covered by TestTelemetryServer).
func TestRunServeFlag(t *testing.T) {
	if err := run([]string{"-protocol", "DFSA", "-tags", "50", "-runs", "1",
		"-serve", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
}
