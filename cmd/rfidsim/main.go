// Command rfidsim runs one tag-identification protocol over a simulated
// RFID field and prints the run metrics.
//
// Usage:
//
//	rfidsim -protocol FCAT-2 -tags 10000 -runs 100
//	rfidsim -protocol DFSA -tags 5000
//	rfidsim -protocol FCAT-2 -channel signal -tags 200 -noise 0.05
//	rfidsim -protocol FCAT-2 -tags 1000 -runs 3 -trace trace.jsonl -metrics -
//
// The abstract channel is the paper's slot-level model; the signal channel
// runs real MSK waveform mixing and interference cancellation (slower —
// use smaller populations).
//
// Observability (see docs/observability.md): -trace writes the campaign's
// full event stream as JSON Lines, -timeline renders a human-readable
// slot-by-slot account, -metrics dumps the aggregated counter/histogram
// registry as "key value" lines, -spans writes the hierarchical span
// timeline as Chrome trace-event JSON (load it at ui.perfetto.dev), -serve
// exposes the live campaign over HTTP (/metrics Prometheus exposition,
// /healthz health score, /debug/vars expvar), and -progress reports per-run
// completion with live identification-latency percentiles on stderr.
// Output paths accept "-" for stdout.
//
// Campaigns run on a worker pool sized by -workers (default: all CPUs);
// every output — metrics, traces, timelines — is bit-identical to a
// sequential run (see docs/parallelism.md).
//
// -stream enables the streaming campaign mode for very large populations:
// identified tags retire out of the reader's working set and resolved
// collision recordings are recycled, bounding steady-state memory while
// producing bit-identical results (see docs/performance.md).
//
// Profiling: -cpuprofile and -memprofile write pprof profiles of the
// campaign for `go tool pprof` (see docs/performance.md). -memprofile also
// writes an in-flight snapshot at the campaign midpoint to <path>.mid, so
// streaming-mode spill behaviour is visible instead of only the settled
// end state.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"github.com/ancrfid/ancrfid"
	"github.com/ancrfid/ancrfid/internal/obs"
	"github.com/ancrfid/ancrfid/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rfidsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rfidsim", flag.ContinueOnError)
	var (
		protoName = fs.String("protocol", "FCAT-2", "protocol: FCAT-k, SCAT-k, DFSA, EDFSA, MDFSA-k, PRALOHA-k, CRDSA, ABS, AQS")
		tags      = fs.Int("tags", 1000, "population size")
		runs      = fs.Int("runs", 10, "Monte-Carlo runs")
		seed      = fs.Uint64("seed", 1, "simulation seed")
		lambda    = fs.Int("lambda", 0, "channel ANC capability (0 = derive from protocol name, else 2)")
		chanKind  = fs.String("channel", "abstract", "channel model: abstract or signal")
		noise     = fs.Float64("noise", 0.03, "signal channel: AWGN sigma")
		jitter    = fs.Float64("jitter", 0, "signal channel: per-transmission phase jitter (radians)")
		punres    = fs.Float64("punresolvable", 0, "abstract channel: probability a resolvable record is spoiled")
		pcorrupt  = fs.Float64("pcorrupt", 0, "abstract channel: probability a singleton is corrupted")
		capSINR   = fs.Float64("capture-sinr", 0, "capture-effect SINR threshold in dB (0 = capture off)")
		maxOrder  = fs.Int("max-order", 0, "decode capability: max resolvable collision order (0 = lambda)")
		plExp     = fs.Float64("pathloss-exp", 0, "link budget: path-loss exponent (0 = default 2.0)")
		ackloss   = fs.Float64("ackloss", 0, "probability a reader acknowledgement is lost (tags retransmit)")
		timing    = fs.String("timing", "icode", "air interface: icode (53 kbit/s) or gen2 (128 kbit/s)")
		workers   = fs.Int("workers", runtime.GOMAXPROCS(0), "Monte-Carlo worker goroutines (output is identical for any value)")
		maxSlots  = fs.Int("max-slots", 0, "slot budget per run; a run that exhausts it fails with a no-progress error (0 = automatic)")
		stream    = fs.Bool("stream", false, "streaming campaign mode: retire identified tags and recycle resolved collision records so mega-N populations run in bounded memory (results are bit-identical)")
		tracePath = fs.String("trace", "", "write the campaign's JSONL event trace to this file (\"-\" = stdout)")
		timeline  = fs.String("timeline", "", "write a human-readable slot timeline to this file (\"-\" = stdout)")
		metrics   = fs.String("metrics", "", "write the aggregated metrics registry to this file (\"-\" = stdout)")
		spansPath = fs.String("spans", "", "write the hierarchical span timeline as Chrome trace-event JSON (Perfetto-loadable) to this file (\"-\" = stdout)")
		serveAddr = fs.String("serve", "", "serve live telemetry over HTTP at this address (/metrics Prometheus exposition, /healthz, /debug/vars)")
		drainTO   = fs.Duration("drain-timeout", 5*time.Second, "graceful drain window for -serve on SIGINT/SIGTERM")
		progress  = fs.Bool("progress", false, "report per-run completion with live latency percentiles on stderr")
		cpuprof   = fs.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
		memprof   = fs.String("memprofile", "", "write a heap profile (after the campaign) to this file")

		arrivalRate   = fs.Float64("arrival-rate", 0, "continuous inventory: Poisson tag arrivals per second (enables the dynamic workload)")
		departureRate = fs.Float64("departure-rate", 0, "continuous inventory: per-tag departure hazard in 1/s")
		duration      = fs.Duration("duration", 0, "continuous inventory: simulated horizon (default 10s when a dynamic rate is set)")

		readers     = fs.Int("readers", 1, "fleet: number of readers (>1 enables the multi-reader scheduler)")
		zones       = fs.Int("zones", 0, "fleet: interrogation zones on a ring (0 = one per reader)")
		policyName  = fs.String("policy", "none", "fleet: reader coordination policy: none, tdma, lbt")
		readerPower = fs.String("reader-power", "", "fleet: comma-separated per-reader transmit power in dBm (default 30)")
		migrate     = fs.Float64("migrate", 0, "fleet: per-tag zone-migration hazard in 1/s (uses -duration as horizon, default 10s)")

		loadgenURL      = fs.String("loadgen", "", "load-generator mode: drive an rfidserver at this base URL instead of simulating locally")
		loadgenSessions = fs.Int("loadgen-sessions", 32, "loadgen: concurrent sessions to create and drive")
		loadgenSteps    = fs.Int("loadgen-steps", 2000, "loadgen: step budget per session")
		loadgenVerify   = fs.Bool("loadgen-verify", false, "loadgen: verify existing sessions instead of driving load (accounting identity, zero duplicate idents)")

		faultAckLoss   = fs.Float64("fault-ack-loss", 0, "fault injection: probability an acknowledgement is dropped (deterministic, seed-split)")
		faultBurstDuty = fs.Float64("fault-burst-duty", 0, "fault injection: Gilbert-Elliott burst-noise duty cycle (fraction of slots spoiled)")
		faultBurstMean = fs.Float64("fault-burst-mean", 0, "fault injection: mean burst length in slots (default 8)")
		faultMute      = fs.Float64("fault-mute", 0, "fault injection: probability a tag is mute (never transmits)")
		faultStuck     = fs.Float64("fault-stuck", 0, "fault injection: probability a tag is a stuck responder (transmits out of protocol)")
		faultCorrupt   = fs.Float64("fault-corrupt", 0, "fault injection: probability a slot's read or decode is corrupted (caught by CRC quarantine)")
		faultCrash     = fs.Int("fault-crash-every", 0, "fault injection: crash and restart the reader every N slots (chaos mode)")
		chaos          = fs.Bool("chaos", false, "chaos mode: fault-injected dynamic run with crash-restart recovery and invariant auditing")
		sweepSeverity  = fs.Int("sweep-severity", 0, "sweep fault severity (ack loss + burst duty) over N+1 points for SCAT and FCAT, print a degradation table")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *loadgenURL != "" {
		return runLoadgen(loadgenConfig{
			base:     strings.TrimRight(*loadgenURL, "/"),
			sessions: *loadgenSessions,
			steps:    *loadgenSteps,
			verify:   *loadgenVerify,
			protocol: *protoName,
			tags:     *tags,
			seed:     *seed,
			workers:  *workers,
		})
	}
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		f, err := os.Create(*memprof)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "rfidsim: writing heap profile:", err)
			}
			f.Close()
		}()
	}

	p, err := ancrfid.ByName(*protoName)
	if err != nil {
		return err
	}
	var tm ancrfid.Timing
	switch *timing {
	case "icode":
		tm = ancrfid.ICodeTiming()
	case "gen2":
		tm = ancrfid.Gen2Timing()
	default:
		return fmt.Errorf("unknown timing %q", *timing)
	}
	lam := *lambda
	if lam <= 0 {
		lam = 2
		var k int
		if _, err := fmt.Sscanf(p.Name(), "FCAT-%d", &k); err == nil {
			lam = k
		} else if _, err := fmt.Sscanf(p.Name(), "SCAT-%d", &k); err == nil {
			lam = k
		} else if _, err := fmt.Sscanf(p.Name(), "MDFSA-%d", &k); err == nil {
			lam = k
		} else if _, err := fmt.Sscanf(p.Name(), "PRALOHA-%d", &k); err == nil {
			lam = k
		}
	}
	capability := ancrfid.ChannelCapability{
		MaxOrder:      *maxOrder,
		CaptureSINRdB: *capSINR,
		Budget:        ancrfid.LinkBudget{PathLossExp: *plExp},
	}

	cfg := ancrfid.SimConfig{Tags: *tags, Runs: *runs, Seed: *seed, Lambda: lam, Capability: capability, Timing: tm, PAckLoss: *ackloss, Workers: *workers, MaxSlots: *maxSlots, Stream: *stream}
	cfg.Faults = ancrfid.FaultConfig{
		AckLoss:          *faultAckLoss,
		Burst:            ancrfid.FaultBurstConfig{Duty: *faultBurstDuty, MeanBad: *faultBurstMean},
		MuteProb:         *faultMute,
		StuckProb:        *faultStuck,
		CorruptSingleton: *faultCorrupt,
		CorruptDecode:    *faultCorrupt,
		CrashEvery:       *faultCrash,
	}

	var (
		tracers     []ancrfid.Tracer
		closers     []io.Closer
		jsonl       *obs.JSONL
		spanBuilder *ancrfid.SpanBuilder
		spanTrace   *ancrfid.ChromeTrace
		health      *ancrfid.HealthMonitor
	)
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()
	openOut := func(path string) (io.Writer, error) {
		if path == "-" {
			return os.Stdout, nil
		}
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		closers = append(closers, f)
		return f, nil
	}
	if *tracePath != "" {
		w, err := openOut(*tracePath)
		if err != nil {
			return err
		}
		jsonl = ancrfid.NewJSONLTracer(w)
		tracers = append(tracers, jsonl)
	}
	if *timeline != "" {
		w, err := openOut(*timeline)
		if err != nil {
			return err
		}
		tracers = append(tracers, ancrfid.NewTimelineTracer(w))
	}
	if *spansPath != "" {
		w, err := openOut(*spansPath)
		if err != nil {
			return err
		}
		spanTrace = ancrfid.NewChromeTrace(w)
		spanBuilder = ancrfid.NewSpanBuilder(spanTrace)
		tracers = append(tracers, spanBuilder)
	}
	if *serveAddr != "" {
		health = ancrfid.NewHealthMonitor(ancrfid.HealthConfig{})
		tracers = append(tracers, health)
	}
	cfg.Tracer = ancrfid.MultiTracer(tracers...)
	// The registry also backs -serve's /metrics and -progress's live latency
	// percentiles, so either flag brings it up even without -metrics.
	var reg *ancrfid.Registry
	if *metrics != "" || *serveAddr != "" || *progress {
		reg = ancrfid.NewRegistry()
		cfg.Metrics = reg
	}
	if *serveAddr != "" {
		ln, err := net.Listen("tcp", *serveAddr)
		if err != nil {
			return fmt.Errorf("telemetry listener: %w", err)
		}
		srv := &http.Server{Handler: newTelemetryServer(reg, health)}
		// The telemetry server shares the binary's signal handling: SIGINT
		// or SIGTERM drains in-flight scrapes through http.Server.Shutdown
		// instead of resetting them. On a signal the campaign itself cannot
		// be cancelled mid-run, so once the drain completes the process
		// exits with the conventional interrupted status; on normal
		// campaign completion the deferred close triggers the same drain.
		campaignDone := make(chan struct{})
		defer close(campaignDone)
		go func() {
			err := server.ServeUntilSignal(srv, ln, server.GracefulOptions{
				DrainTimeout: *drainTO,
				Trigger:      campaignDone,
				Logf: func(format string, a ...any) {
					fmt.Fprintf(os.Stderr, "rfidsim: telemetry: "+format+"\n", a...)
				},
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "rfidsim: telemetry server:", err)
			}
			select {
			case <-campaignDone:
			default:
				os.Exit(130)
			}
		}()
		fmt.Fprintf(os.Stderr, "rfidsim: telemetry on http://%s (/metrics, /healthz, /debug/vars)\n", ln.Addr())
	}
	if *progress {
		identLat := reg.Sketch(ancrfid.SketchIdentLatencyUS)
		cfg.Progress = func(run int, m ancrfid.Metrics, err error) {
			if err != nil {
				fmt.Fprintf(os.Stderr, "run %d/%d: %v\n", run+1, *runs, err)
				return
			}
			// The sketch aggregates campaign-wide and streams mid-run, so the
			// percentiles are live estimates, sharpening as runs complete.
			p50 := time.Duration(identLat.Quantile(0.50)) * time.Microsecond
			p95 := time.Duration(identLat.Quantile(0.95)) * time.Microsecond
			fmt.Fprintf(os.Stderr, "run %d/%d: %d/%d tags in %d slots (%.1f tags/s, ident p50 %v p95 %v)\n",
				run+1, *runs, m.Identified(), m.Tags, m.TotalSlots(), m.Throughput(),
				p50.Round(100*time.Microsecond), p95.Round(100*time.Microsecond))
		}
	}
	if *memprof != "" {
		// Exit-time heap profiles only show the settled end state; snapshot
		// the live heap mid-campaign too (after half the runs, while the
		// runner's arenas and any streaming-mode spill state are hot) so
		// the in-flight footprint is visible in pprof.
		mid := (*runs - 1) / 2
		midPath := *memprof + ".mid"
		prev := cfg.Progress
		cfg.Progress = func(run int, m ancrfid.Metrics, err error) {
			if prev != nil {
				prev(run, m, err)
			}
			if run != mid {
				return
			}
			f, ferr := os.Create(midPath)
			if ferr != nil {
				fmt.Fprintln(os.Stderr, "rfidsim: midpoint heap profile:", ferr)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if ferr := pprof.WriteHeapProfile(f); ferr != nil {
				fmt.Fprintln(os.Stderr, "rfidsim: writing midpoint heap profile:", ferr)
			}
		}
	}
	switch *chanKind {
	case "abstract":
		if *punres > 0 || *pcorrupt > 0 {
			lam := lam
			cfg.NewChannel = func(r *ancrfid.RNG) ancrfid.Channel {
				return ancrfid.NewAbstractChannel(ancrfid.AbstractChannelConfig{
					Lambda:            lam,
					Capability:        capability,
					PUnresolvable:     *punres,
					PCorruptSingleton: *pcorrupt,
				}, r)
			}
		}
	case "signal":
		cfg.NewChannel = func(r *ancrfid.RNG) ancrfid.Channel {
			scfg := ancrfid.SignalChannelConfig{
				NoiseSigma:  *noise,
				PhaseJitter: *jitter,
				MaxCancel:   lam,
				Capability:  capability,
			}
			return ancrfid.NewSignalChannel(scfg, r)
		}
	default:
		return fmt.Errorf("unknown channel %q", *chanKind)
	}

	flushOutputs := func() error {
		if jsonl != nil {
			if err := jsonl.Err(); err != nil {
				return fmt.Errorf("writing trace: %w", err)
			}
		}
		if spanBuilder != nil {
			spanBuilder.Close()
			if err := spanTrace.Close(); err != nil {
				return fmt.Errorf("writing spans: %w", err)
			}
		}
		if reg != nil && *metrics != "" {
			w, err := openOut(*metrics)
			if err != nil {
				return err
			}
			if _, err := reg.WriteTo(w); err != nil {
				return fmt.Errorf("writing metrics: %w", err)
			}
		}
		return nil
	}

	if *sweepSeverity > 0 {
		return runSeveritySweep(cfg, lam, *sweepSeverity)
	}

	if *readers > 1 || *zones > 1 || *migrate > 0 || *policyName != "none" {
		topo := ancrfid.FleetTopology{
			Readers:       *readers,
			Zones:         *zones,
			Workers:       *workers,
			Horizon:       *duration,
			MigrationRate: *migrate,
		}
		if *migrate > 0 && topo.Horizon <= 0 {
			topo.Horizon = 10 * time.Second
		}
		switch *policyName {
		case "none":
			topo.Policy = ancrfid.UncoordinatedPolicy()
		case "tdma":
			topo.Policy = ancrfid.TDMAPolicy(0)
		case "lbt":
			topo.Policy = ancrfid.LBTPolicy()
		default:
			return fmt.Errorf("unknown policy %q (want none, tdma or lbt)", *policyName)
		}
		if *readerPower != "" {
			for _, field := range strings.Split(*readerPower, ",") {
				dbm, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
				if err != nil {
					return fmt.Errorf("bad -reader-power entry %q: %w", field, err)
				}
				topo.ReaderPower = append(topo.ReaderPower, dbm)
			}
		}
		if err := runFleet(p, cfg, topo, *chanKind); err != nil {
			return err
		}
		return flushOutputs()
	}

	if *chaos {
		horizon := *duration
		if horizon <= 0 {
			horizon = 10 * time.Second
		}
		wl := ancrfid.WorkloadConfig{
			Duration:      horizon,
			ArrivalRate:   *arrivalRate,
			DepartureRate: *departureRate,
		}
		if err := runChaos(p, cfg, wl, *chanKind); err != nil {
			return err
		}
		return flushOutputs()
	}

	if *arrivalRate > 0 || *departureRate > 0 || *duration > 0 {
		horizon := *duration
		if horizon <= 0 {
			horizon = 10 * time.Second
		}
		wl := ancrfid.WorkloadConfig{
			Duration:      horizon,
			ArrivalRate:   *arrivalRate,
			DepartureRate: *departureRate,
		}
		if err := runDynamic(p, cfg, wl, *chanKind); err != nil {
			return err
		}
		return flushOutputs()
	}

	res, err := ancrfid.Run(p, cfg)
	if err != nil {
		return err
	}
	if err := flushOutputs(); err != nil {
		return err
	}

	m0 := res.Runs[0]
	fmt.Printf("protocol        %s\n", res.Protocol)
	fmt.Printf("population      %d tags, %d runs, seed %d, channel %s\n", *tags, *runs, *seed, *chanKind)
	fmt.Printf("throughput      %.1f tags/s (std %.1f, min %.1f, max %.1f)\n",
		res.Throughput.Mean, res.Throughput.Std, res.Throughput.Min, res.Throughput.Max)
	fmt.Printf("slots           %.0f total = %.0f empty + %.0f singleton + %.0f collision\n",
		res.TotalSlots.Mean, res.EmptySlots.Mean, res.SingletonSlots.Mean, res.CollisionSlots.Mean)
	fmt.Printf("identification  %.0f direct + %.0f resolved from collision records\n",
		res.DirectIDs.Mean, res.ResolvedIDs.Mean)
	fmt.Printf("read time       %v (run 0)\n", m0.OnAir.Round(1e6))
	fmt.Printf("reference       ALOHA bound %.1f tags/s, ANC bound (lambda=%d) %.1f tags/s\n",
		ancrfid.AlohaBound(tm), lam, ancrfid.ANCBound(tm, lam))
	return nil
}

// runChaos executes the chaos mode: fault-injected dynamic runs with
// crash-restart recovery. Runs execute sequentially so a failing run can
// print its partial report; every run's invariant audit is summarized.
func runChaos(p ancrfid.Protocol, cfg ancrfid.SimConfig, wl ancrfid.WorkloadConfig, chanKind string) error {
	sp, ok := ancrfid.AsSession(p)
	if !ok {
		return fmt.Errorf("protocol %s does not support chaos mode", p.Name())
	}
	ccfg := ancrfid.ChaosConfig{Config: cfg, Workload: wl}

	fmt.Printf("protocol        %s (chaos mode)\n", p.Name())
	fmt.Printf("workload        arrivals %.1f/s, departure hazard %.2f/s, horizon %v\n",
		wl.ArrivalRate, wl.DepartureRate, wl.Duration)
	fmt.Printf("population      %d initial tags, %d runs, seed %d, channel %s\n",
		cfg.Tags, cfg.Runs, cfg.Seed, chanKind)
	f := cfg.Faults
	fmt.Printf("faults          ack-loss %.2f, burst duty %.2f, mute %.2f, stuck %.2f, corrupt %.2f, crash every %d slots\n",
		f.AckLoss, f.Burst.Duty, f.MuteProb, f.StuckProb, f.CorruptDecode, f.CrashEvery)

	var (
		reports  []ancrfid.ChaosReport
		firstErr error
	)
	for i := 0; i < cfg.Runs; i++ {
		rep, err := ancrfid.RunChaosOnce(sp, ccfg, i)
		if cfg.Progress != nil {
			cfg.Progress(i, rep.Metrics, err)
		}
		reports = append(reports, rep)
		if err != nil {
			// Print the partial report alongside the error rather than
			// discarding the run's accounting.
			fmt.Printf("run %d FAILED after %v: %v\n", i, rep.Duration.Round(time.Millisecond), err)
			firstErr = fmt.Errorf("%s chaos run %d: %w", p.Name(), i, err)
			break
		}
	}

	if len(reports) == 0 {
		return firstErr
	}
	var adm, idf, missed, active, tp, crashes, cps, faults, quar, stalls, score float64
	phantoms, dups, unaccounted := 0, 0, 0
	for i := range reports {
		rep := &reports[i]
		adm += float64(rep.Admitted)
		idf += float64(rep.Identified)
		missed += float64(rep.DepartedUnread)
		active += float64(rep.ActiveUnread)
		if rep.Duration > 0 {
			tp += float64(rep.Identified) / rep.Duration.Seconds()
		}
		crashes += float64(rep.Crashes)
		cps += float64(rep.Checkpoints)
		faults += float64(rep.FaultsInjected)
		quar += float64(rep.Quarantined)
		stalls += float64(rep.Stalls)
		score += rep.HealthScore
		phantoms += rep.Phantoms
		dups += rep.DupIdents
		if !rep.Accounted() {
			unaccounted++
		}
	}
	n := float64(len(reports))
	fmt.Printf("accounting      admitted %.1f = identified %.1f + missed %.1f + still-active %.1f (run means)\n",
		adm/n, idf/n, missed/n, active/n)
	fmt.Printf("chaos           crashes %.1f, checkpoints %.1f, faults injected %.1f, records quarantined %.1f (run means)\n",
		crashes/n, cps/n, faults/n, quar/n)
	fmt.Printf("health          score %.1f/100, stall episodes %.1f (run means)\n", score/n, stalls/n)
	fmt.Printf("invariants      phantom IDs %d, duplicate identifications %d, accounting violations %d (totals over %d runs)\n",
		phantoms, dups, unaccounted, len(reports))
	fmt.Printf("throughput      %.1f tags/s identified\n", tp/n)
	if firstErr == nil && (phantoms > 0 || dups > 0 || unaccounted > 0) {
		firstErr = fmt.Errorf("%s chaos campaign violated inventory invariants", p.Name())
	}
	return firstErr
}

// runSeveritySweep prints a throughput-versus-fault-severity table for SCAT
// and FCAT from a single invocation: severity s in [0,1] over points+1 steps
// scales acknowledgement loss and burst-noise duty linearly up to their
// configured (or default) maxima. Graceful degradation shows as a monotone,
// cliff-free column.
func runSeveritySweep(cfg ancrfid.SimConfig, lam, points int) error {
	maxAck := cfg.Faults.AckLoss
	if maxAck <= 0 {
		maxAck = 0.4
	}
	maxDuty := cfg.Faults.Burst.Duty
	if maxDuty <= 0 {
		maxDuty = 0.3
	}
	scatP := ancrfid.NewSCAT(lam)
	fcatP := ancrfid.NewFCAT(lam)

	fmt.Printf("severity sweep  %d points, ack-loss 0..%.2f, burst duty 0..%.2f (%d tags, %d runs/point, seed %d)\n",
		points+1, maxAck, maxDuty, cfg.Tags, cfg.Runs, cfg.Seed)
	fmt.Printf("%-9s %-9s %-11s %-14s %-14s %-12s %-12s\n", "severity", "ack-loss", "burst-duty",
		scatP.Name()+" tags/s", fcatP.Name()+" tags/s", "scat-health", "fcat-health")
	for i := 0; i <= points; i++ {
		s := float64(i) / float64(points)
		c := cfg
		c.Metrics = nil
		c.Progress = nil
		c.Faults.AckLoss = maxAck * s
		c.Faults.Burst.Duty = maxDuty * s
		// A per-point health monitor scores each protocol's degradation: a
		// campaign that merely slows down keeps a high score, one that stalls
		// (collision slots with no progress) or fails runs loses points.
		scatHealth := ancrfid.NewHealthMonitor(ancrfid.HealthConfig{})
		c.Tracer = scatHealth
		scatRes, err := ancrfid.Run(scatP, c)
		if err != nil {
			return fmt.Errorf("severity %.2f: %w", s, err)
		}
		fcatHealth := ancrfid.NewHealthMonitor(ancrfid.HealthConfig{})
		c.Tracer = fcatHealth
		fcatRes, err := ancrfid.Run(fcatP, c)
		if err != nil {
			return fmt.Errorf("severity %.2f: %w", s, err)
		}
		fmt.Printf("%-9.2f %-9.3f %-11.3f %-14.1f %-14.1f %-12.0f %-12.0f\n",
			s, c.Faults.AckLoss, c.Faults.Burst.Duty, scatRes.Throughput.Mean, fcatRes.Throughput.Mean,
			scatHealth.Score(), fcatHealth.Score())
	}
	return nil
}

// runFleet executes the multi-reader mode: each run schedules the fleet
// topology over the discrete-event core. Runs execute sequentially so a
// failing run can still print its partial report; the per-run zone shards
// run on topo.Workers goroutines with bit-identical output for any count.
func runFleet(p ancrfid.Protocol, cfg ancrfid.SimConfig, topo ancrfid.FleetTopology, chanKind string) error {
	sp, ok := ancrfid.AsSession(p)
	if !ok {
		return fmt.Errorf("protocol %s does not support fleet mode", p.Name())
	}
	fcfg := ancrfid.FleetSimConfig{Config: cfg, Fleet: topo}

	nReaders := topo.Readers
	if nReaders <= 0 {
		nReaders = 1
	}
	nZones := topo.Zones
	if nZones <= 0 {
		nZones = nReaders
	}
	shape := "ring"
	if topo.Linear {
		shape = "line"
	}
	link := ancrfid.DefaultFleetLinkBudget()
	fmt.Printf("protocol        %s (fleet mode)\n", p.Name())
	fmt.Printf("fleet           %d readers over %d zones (%s), policy %s, link %.0f dBm tx / %.0f dB adjacent loss\n",
		nReaders, nZones, shape, topo.Policy.Name(), link.TxPowerDBm, link.AdjacentLossDB)
	if topo.MigrationRate > 0 || topo.Horizon > 0 {
		fmt.Printf("workload        migration hazard %.2f/s, horizon %v\n", topo.MigrationRate, topo.Horizon)
	}
	fmt.Printf("population      %d tags per reader, %d runs, seed %d, channel %s\n",
		cfg.Tags, cfg.Runs, cfg.Seed, chanKind)

	var (
		reports  []ancrfid.FleetReport
		firstErr error
	)
	for i := 0; i < cfg.Runs; i++ {
		rep, err := ancrfid.RunFleetOnce(sp, fcfg, i)
		reports = append(reports, rep)
		if err != nil {
			fmt.Printf("run %d FAILED after %v: %v\n", i, rep.Duration.Round(time.Millisecond), err)
			firstErr = fmt.Errorf("%s fleet run %d: %w", p.Name(), i, err)
			break
		}
	}
	if len(reports) == 0 {
		return firstErr
	}

	n := float64(len(reports))
	fmt.Printf("%-7s %-5s %-10s %-11s %-8s %-8s %-11s %s\n",
		"reader", "zone", "power", "identified", "steps", "blocked", "interfered", "air (run means)")
	for r := 0; r < nReaders; r++ {
		var idf, steps, blocked, interf, air float64
		var zone int
		var power float64
		for i := range reports {
			if r >= len(reports[i].Readers) {
				continue
			}
			rr := &reports[i].Readers[r]
			zone, power = rr.Zone, rr.PowerDBm
			idf += float64(rr.Metrics.Identified())
			steps += float64(rr.Steps)
			blocked += float64(rr.Blocked)
			interf += float64(rr.Interfered)
			air += rr.OnAir.Seconds()
		}
		fmt.Printf("%-7d %-5d %-10s %-11.1f %-8.1f %-8.1f %-11.1f %v\n",
			r, zone, fmt.Sprintf("%.1f dBm", power), idf/n, steps/n, blocked/n, interf/n,
			time.Duration(air/n*float64(time.Second)).Round(time.Millisecond))
	}

	var adm, idf, missed, active, mig, col, blk, dur, tp float64
	dups, phantoms, unaccounted := 0, 0, 0
	for i := range reports {
		rep := &reports[i]
		adm += float64(rep.Admitted)
		idf += float64(rep.Identified)
		missed += float64(rep.DepartedUnread)
		active += float64(rep.ActiveUnread)
		mig += float64(rep.Migrations)
		col += float64(rep.ReaderCollisions)
		blk += float64(rep.BlockedSlots)
		dur += rep.Duration.Seconds()
		if rep.Duration > 0 {
			tp += float64(rep.Identified) / rep.Duration.Seconds()
		}
		dups += rep.DupIdents
		phantoms += rep.Phantoms
		if !rep.Accounted() {
			unaccounted++
		}
	}
	fmt.Printf("accounting      admitted %.1f = identified %.1f + missed %.1f + still-active %.1f (run means)\n",
		adm/n, idf/n, missed/n, active/n)
	fmt.Printf("coordination    %.1f migrations, %.1f reader-collision slots, %.1f policy-blocked slots (run means)\n",
		mig/n, col/n, blk/n)
	fmt.Printf("invariants      phantom IDs %d, duplicate identifications %d, accounting violations %d (totals over %d runs)\n",
		phantoms, dups, unaccounted, len(reports))
	fmt.Printf("throughput      %.1f tags/s fleet-wide over %v mean wall clock\n",
		tp/n, time.Duration(dur/n*float64(time.Second)).Round(time.Millisecond))
	if firstErr == nil && (phantoms > 0 || dups > 0 || unaccounted > 0) {
		firstErr = fmt.Errorf("%s fleet campaign violated inventory invariants", p.Name())
	}
	return firstErr
}

// runDynamic executes the continuous-inventory mode: each run drives a
// protocol session under the dynamic workload. Runs execute sequentially
// so a failing run (e.g. ErrNoProgress) can still print its partial
// report instead of discarding the metrics.
func runDynamic(p ancrfid.Protocol, cfg ancrfid.SimConfig, wl ancrfid.WorkloadConfig, chanKind string) error {
	sp, ok := ancrfid.AsSession(p)
	if !ok {
		return fmt.Errorf("protocol %s does not support continuous inventory", p.Name())
	}
	dcfg := ancrfid.DynamicSimConfig{Config: cfg, Workload: wl}

	fmt.Printf("protocol        %s (continuous inventory)\n", p.Name())
	fmt.Printf("workload        arrivals %.1f/s, departure hazard %.2f/s, horizon %v\n",
		wl.ArrivalRate, wl.DepartureRate, wl.Duration)
	fmt.Printf("population      %d initial tags, %d runs, seed %d, channel %s\n",
		cfg.Tags, cfg.Runs, cfg.Seed, chanKind)

	var (
		reports  []ancrfid.WorkloadReport
		firstErr error
	)
	for i := 0; i < cfg.Runs; i++ {
		rep, err := ancrfid.RunDynamicOnce(sp, dcfg, i)
		if cfg.Progress != nil {
			cfg.Progress(i, rep.Metrics, err)
		}
		reports = append(reports, rep)
		if err != nil {
			// Print the partial report alongside the error rather than
			// discarding the run's metrics.
			fmt.Printf("run %d FAILED after %v: %v\n", i, rep.Duration.Round(time.Millisecond), err)
			firstErr = fmt.Errorf("%s dynamic run %d: %w", p.Name(), i, err)
			break
		}
	}

	if len(reports) == 0 {
		return firstErr
	}
	var adm, idf, missed, active, tp float64
	var lat []time.Duration
	for i := range reports {
		rep := &reports[i]
		adm += float64(rep.Admitted)
		idf += float64(rep.Identified)
		missed += float64(rep.DepartedUnread)
		active += float64(rep.ActiveUnread)
		if rep.Duration > 0 {
			tp += float64(rep.Identified) / rep.Duration.Seconds()
		}
		lat = append(lat, rep.Latencies()...)
	}
	n := float64(len(reports))
	fmt.Printf("accounting      admitted %.1f = identified %.1f + missed %.1f + still-active %.1f (run means)\n",
		adm/n, idf/n, missed/n, active/n)
	fmt.Printf("throughput      %.1f tags/s identified\n", tp/n)
	if len(lat) > 0 {
		fmt.Printf("latency         p50 %v, p90 %v, p99 %v (arrival to identification)\n",
			ancrfid.LatencyPercentile(lat, 50).Round(time.Millisecond),
			ancrfid.LatencyPercentile(lat, 90).Round(time.Millisecond),
			ancrfid.LatencyPercentile(lat, 99).Round(time.Millisecond))
	}
	return firstErr
}
