// Command rfidserver hosts concurrent RFID inventory sessions over HTTP
// with durable checkpoints and crash recovery.
//
//	rfidserver -addr :8080 -data /var/lib/rfidserver
//
// Sessions are created, stepped and mutated through the /v1/sessions API
// (see docs/server.md); every admission and revocation is durable before
// its response, step progress is checkpointed on a cadence, and a restart
// — graceful or kill -9 — recovers every checkpointed session by
// deterministic replay. Damaged checkpoint files are quarantined, never
// fatal, and surface on /metrics as the rfid_server_recovery_* families.
//
// SIGINT/SIGTERM drains gracefully: the listener stops accepting, in-
// flight requests finish, and every live session is checkpointed before
// exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"github.com/ancrfid/ancrfid/internal/fault"
	"github.com/ancrfid/ancrfid/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rfidserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rfidserver", flag.ExitOnError)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		dataDir   = fs.String("data", "rfidserver-data", "durable checkpoint directory")
		shards    = fs.Int("shards", 8, "worker-pool width (sessions hash onto shards)")
		queue     = fs.Int("queue", 128, "per-shard request queue depth (full queue = HTTP 429)")
		ckptEvery = fs.Int("checkpoint-every", 4096, "steps between cadence checkpoints (ops always checkpoint eagerly)")
		idleEvict = fs.Duration("idle-evict", 10*time.Minute, "passivate sessions idle this long (0 disables)")
		stepDL    = fs.Duration("step-deadline", 2*time.Second, "wall-time bound on one step request")
		rate      = fs.Float64("rate", 0, "per-client request rate limit, tokens/second (0 disables)")
		burst     = fs.Int("burst", 0, "rate-limit burst (default 2x rate)")
		maxSess   = fs.Int("max-sessions", 0, "cap on live in-memory sessions (0 = unlimited)")
		drainTO   = fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown window on SIGINT/SIGTERM")
		// Chaos drill knobs: deterministic checkpoint-write fault injection.
		faultShort = fs.Float64("fault-short-write", 0, "probability a checkpoint write is truncated (chaos drills)")
		faultTorn  = fs.Float64("fault-torn-write", 0, "probability a checkpoint write has a bit flipped (chaos drills)")
		faultErr   = fs.Float64("fault-write-err", 0, "probability a checkpoint write fails outright (chaos drills)")
		faultSeed  = fs.Uint64("fault-seed", 1, "fault-injection seed")
	)
	fs.Parse(args)

	logger := log.New(os.Stderr, "rfidserver: ", log.LstdFlags)
	srv, err := server.New(server.Config{
		Dir:             *dataDir,
		Shards:          *shards,
		QueueDepth:      *queue,
		CheckpointEvery: *ckptEvery,
		IdleAfter:       *idleEvict,
		StepDeadline:    *stepDL,
		RateLimit:       *rate,
		RateBurst:       *burst,
		MaxSessions:     *maxSess,
		DiskFaults:      fault.DiskConfig{ShortWrite: *faultShort, Torn: *faultTorn, WriteErr: *faultErr},
		FaultSeed:       *faultSeed,
		Logf:            logger.Printf,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Printf("serving %d recovered sessions on http://%s (data %s)", srv.Live(), ln.Addr(), *dataDir)
	return server.ServeUntilSignal(&http.Server{Handler: srv.Handler()}, ln, server.GracefulOptions{
		DrainTimeout: *drainTO,
		OnShutdown:   srv.Drain,
		Logf:         logger.Printf,
	})
}
