package main

import "testing"

func TestRunAnalyticExperiments(t *testing.T) {
	for _, exp := range []string{"fig3", "fig4"} {
		if err := run([]string{"-exp", exp, "-q"}); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

func TestRunSimulatedExperimentSmall(t *testing.T) {
	if err := run([]string{"-exp", "table1", "-runs", "2", "-sizes", "300", "-q"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCSVFormat(t *testing.T) {
	if err := run([]string{"-exp", "fig4", "-format", "csv", "-q"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunHashTxModel(t *testing.T) {
	if err := run([]string{"-exp", "table1", "-runs", "1", "-sizes", "200", "-txmodel", "hash", "-q"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-exp", "table9"},
		{"-format", "xml", "-exp", "fig4"},
		{"-txmodel", "psychic", "-exp", "fig4"},
		{"-sizes", "abc", "-exp", "table1"},
		{"-sizes", "-5", "-exp", "table1"},
	} {
		if err := run(append(args, "-q")); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}
