// Command tables regenerates the tables and figures of "Using Analog
// Network Coding to Improve the RFID Reading Throughput" (ICDCS 2010).
//
// Usage:
//
//	tables -exp all                 # every experiment, paper defaults
//	tables -exp table1 -runs 20     # one experiment, fewer runs
//	tables -exp fig5 -format csv    # machine-readable output
//	tables -exp table1 -sizes 1000,5000,10000
//
// Output goes to stdout; progress lines go to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"github.com/ancrfid/ancrfid/internal/experiments"
	"github.com/ancrfid/ancrfid/internal/protocol"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tables", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "all", "experiment id ("+strings.Join(experiments.IDs(), ", ")+") or 'all'")
		runs    = fs.Int("runs", 0, "Monte-Carlo runs per data point (0 = per-experiment default)")
		seed    = fs.Uint64("seed", 1, "simulation seed")
		format  = fs.String("format", "text", "output format: text, csv, or plot (figures only)")
		txmodel = fs.String("txmodel", "binomial", "transmission model: binomial or hash")
		sizes   = fs.String("sizes", "", "comma-separated population grid override for table1")
		workers = fs.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for data points and campaigns (output is identical for any value)")
		quiet   = fs.Bool("q", false, "suppress progress output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := experiments.Options{Runs: *runs, Seed: *seed, Workers: *workers}
	if !*quiet {
		opts.Progress = os.Stderr
	}
	switch *txmodel {
	case "binomial":
		opts.TxModel = protocol.TxBinomial
	case "hash":
		opts.TxModel = protocol.TxHash
	default:
		return fmt.Errorf("unknown txmodel %q", *txmodel)
	}
	if *sizes != "" {
		for _, part := range strings.Split(*sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				return fmt.Errorf("bad population size %q", part)
			}
			opts.Sizes = append(opts.Sizes, n)
		}
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		rendered, err := experiments.Run(id, opts)
		if err != nil {
			return err
		}
		switch *format {
		case "text":
			if err := rendered.WriteText(os.Stdout); err != nil {
				return err
			}
		case "csv":
			if err := rendered.WriteCSV(os.Stdout); err != nil {
				return err
			}
		case "plot":
			if err := rendered.WritePlot(os.Stdout); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
	}
	return nil
}
