module github.com/ancrfid/ancrfid

go 1.22
