package ancrfid_test

import (
	"bytes"
	"testing"

	"github.com/ancrfid/ancrfid"
)

var telemetryProtocols = []string{"FCAT-2", "SCAT-2", "DFSA", "EDFSA", "CRDSA", "ABS", "AQS"}

// collectSpans runs a campaign with a span builder attached and returns the
// emitted span stream.
func collectSpans(t *testing.T, name string, workers int) []ancrfid.Span {
	t.Helper()
	p, err := ancrfid.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	var spans []ancrfid.Span
	b := ancrfid.NewSpanBuilder(ancrfid.SpanSinkFunc(func(s ancrfid.Span) {
		spans = append(spans, s)
	}))
	cfg := ancrfid.SimConfig{Tags: 150, Runs: 3, Seed: 11, Workers: workers, Tracer: b}
	if _, err := ancrfid.Run(p, cfg); err != nil {
		t.Fatal(err)
	}
	b.Close()
	return spans
}

// TestSpanInvariants is the span-model property test, across every
// protocol: IDs are unique, every span satisfies Start <= End, every parent
// link resolves to an emitted span, children nest inside their parents, and
// the campaign span (ID 1) closes the stream covering all runs.
func TestSpanInvariants(t *testing.T) {
	for _, name := range telemetryProtocols {
		t.Run(name, func(t *testing.T) {
			spans := collectSpans(t, name, 1)
			if len(spans) == 0 {
				t.Fatal("no spans emitted")
			}
			byID := make(map[uint64]ancrfid.Span, len(spans))
			runs := 0
			for _, s := range spans {
				if _, dup := byID[s.ID]; dup {
					t.Fatalf("duplicate span ID %d", s.ID)
				}
				byID[s.ID] = s
				if s.Kind == ancrfid.SpanRun {
					runs++
				}
			}
			for _, s := range spans {
				if s.Start > s.End {
					t.Errorf("span %d (%v): start %v > end %v", s.ID, s.Kind, s.Start, s.End)
				}
				if s.Kind == ancrfid.SpanCampaign {
					if s.ID != 1 || s.Parent != 0 {
						t.Errorf("campaign span must be ID 1 / parent 0, got %+v", s)
					}
					continue
				}
				p, ok := byID[s.Parent]
				if !ok {
					t.Errorf("span %d (%v): parent %d never emitted", s.ID, s.Kind, s.Parent)
					continue
				}
				if s.Start < p.Start || s.End > p.End {
					t.Errorf("span %d (%v) [%v,%v] escapes parent %d (%v) [%v,%v]",
						s.ID, s.Kind, s.Start, s.End, p.ID, p.Kind, p.Start, p.End)
				}
			}
			last := spans[len(spans)-1]
			if last.Kind != ancrfid.SpanCampaign {
				t.Errorf("stream must end with the campaign span, got %v", last.Kind)
			}
			if runs != 3 {
				t.Errorf("%d run spans, want 3", runs)
			}
		})
	}
}

// TestSpanStreamWorkersIdentical: the ordered-merge determinism contract
// extends to spans — the span stream (serialised through the Chrome-trace
// exporter, IDs and all) is byte-identical for any worker count.
func TestSpanStreamWorkersIdentical(t *testing.T) {
	render := func(name string, workers int) []byte {
		p, err := ancrfid.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		ct := ancrfid.NewChromeTrace(&buf)
		b := ancrfid.NewSpanBuilder(ct)
		cfg := ancrfid.SimConfig{Tags: 120, Runs: 6, Seed: 7, Workers: workers, Tracer: b}
		if _, err := ancrfid.Run(p, cfg); err != nil {
			t.Fatal(err)
		}
		b.Close()
		if err := ct.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for _, name := range telemetryProtocols {
		t.Run(name, func(t *testing.T) {
			seq := render(name, 1)
			par := render(name, 8)
			if !bytes.Equal(seq, par) {
				t.Errorf("span stream differs between workers=1 (%d bytes) and workers=8 (%d bytes)",
					len(seq), len(par))
			}
		})
	}
}

// TestPrometheusDeterministic: the exposition of one campaign's registry is
// identical across worker counts and across repeated dumps (the atomic
// totals commute; the encoder iterates sorted names).
func TestPrometheusDeterministic(t *testing.T) {
	expose := func(workers int) []byte {
		p, err := ancrfid.ByName("FCAT-2")
		if err != nil {
			t.Fatal(err)
		}
		reg := ancrfid.NewRegistry()
		cfg := ancrfid.SimConfig{Tags: 200, Runs: 4, Seed: 9, Workers: workers, Metrics: reg}
		if _, err := ancrfid.Run(p, cfg); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := ancrfid.WritePrometheus(&buf, reg); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq := expose(1)
	par := expose(8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("exposition differs between worker counts:\n--- workers=1\n%s\n--- workers=8\n%s", seq, par)
	}
}
