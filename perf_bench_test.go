// Hot-path benchmarks: the per-run cost the CI bench gate tracks (see
// cmd/benchgate and docs/performance.md). BenchmarkCampaign is the
// headline end-to-end number; BenchmarkSlotLoop isolates the steady-state
// slot loop it is built from.
package ancrfid_test

import (
	"testing"

	"github.com/ancrfid/ancrfid"
)

// BenchmarkCampaign measures a single-worker FCAT-2 campaign over 5000
// tags — the per-run hot path (transmitter draws, channel observations,
// record cascades) with no parallelism masking it.
func BenchmarkCampaign(b *testing.B) {
	p := ancrfid.NewFCAT(2)
	cfg := ancrfid.SimConfig{Tags: 5000, Runs: 4, Seed: 1, Workers: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ancrfid.Run(p, cfg); err != nil {
			b.Fatal(err)
		}
	}
	simulated := float64(cfg.Tags*cfg.Runs) * float64(b.N)
	b.ReportMetric(simulated/b.Elapsed().Seconds(), "tags/sec")
}

// BenchmarkSlotLoop measures one deterministic FCAT-2 run and reports the
// amortised cost per slot, the unit the zero-allocation guards are written
// against.
func BenchmarkSlotLoop(b *testing.B) {
	p := ancrfid.NewFCAT(2)
	cfg := ancrfid.SimConfig{Tags: 2000, Runs: 1, Seed: 1, Workers: 1}
	b.ReportAllocs()
	slots := 0
	for i := 0; i < b.N; i++ {
		m, err := ancrfid.RunOnce(p, cfg, 0)
		if err != nil {
			b.Fatal(err)
		}
		slots = m.TotalSlots()
	}
	if slots > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(slots), "ns/slot")
	}
}
