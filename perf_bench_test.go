// Hot-path benchmarks: the per-run cost the CI bench gate tracks (see
// cmd/benchgate and docs/performance.md). BenchmarkCampaign is the
// headline end-to-end number; BenchmarkSlotLoop isolates the steady-state
// slot loop it is built from.
package ancrfid_test

import (
	"io"
	"testing"
	"time"

	"github.com/ancrfid/ancrfid"
	"github.com/ancrfid/ancrfid/internal/channel"
)

// BenchmarkCampaign measures a single-worker FCAT-2 campaign over 5000
// tags — the per-run hot path (transmitter draws, channel observations,
// record cascades) with no parallelism masking it.
func BenchmarkCampaign(b *testing.B) {
	p := ancrfid.NewFCAT(2)
	cfg := ancrfid.SimConfig{Tags: 5000, Runs: 4, Seed: 1, Workers: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ancrfid.Run(p, cfg); err != nil {
			b.Fatal(err)
		}
	}
	simulated := float64(cfg.Tags*cfg.Runs) * float64(b.N)
	b.ReportMetric(simulated/b.Elapsed().Seconds(), "tags/sec")
}

// sessionSteadyState builds an FCAT-2 session and drives it until the
// population is exhausted, leaving it in the continuous-monitoring state
// (probing an empty field) — the per-slot cost an idle reader pays between
// arrivals in a dynamic workload.
func sessionSteadyState(fatal func(...any)) ancrfid.Session {
	sp, ok := ancrfid.AsSession(ancrfid.NewFCAT(2))
	if !ok {
		fatal("FCAT does not implement SessionProtocol")
	}
	env := sessionEnv("abstract", 1)
	env.MaxSlots = 1 << 40 // monitoring steps must never hit the budget
	s := sp.Begin(env)
	for {
		done, err := s.Step()
		if err != nil {
			fatal(err)
		}
		if done {
			return s
		}
	}
}

// BenchmarkSessionStep measures the steady-state session step: a quiesced
// FCAT-2 session monitoring an exhausted field, one probe slot per Step.
// This is the idle-reader cost of the continuous-inventory loop (see
// docs/architecture.md); the zero-alloc guard for it is
// TestSessionStepZeroAlloc.
func BenchmarkSessionStep(b *testing.B) {
	s := sessionSteadyState(b.Fatal)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSessionStepZeroAlloc pins the steady-state session step to zero
// allocations with the tracer off: monitoring an empty field must cost the
// probe slot and nothing else, so dynamic workloads can idle indefinitely
// without garbage.
func TestSessionStepZeroAlloc(t *testing.T) {
	s := sessionSteadyState(func(args ...any) { t.Fatal(args...) })
	allocs := testing.AllocsPerRun(300, func() {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state session step allocates %v times, want 0", allocs)
	}
}

// BenchmarkSlotLoop measures one deterministic FCAT-2 run and reports the
// amortised cost per slot, the unit the zero-allocation guards are written
// against.
func BenchmarkSlotLoop(b *testing.B) {
	p := ancrfid.NewFCAT(2)
	cfg := ancrfid.SimConfig{Tags: 2000, Runs: 1, Seed: 1, Workers: 1}
	b.ReportAllocs()
	slots := 0
	for i := 0; i < b.N; i++ {
		m, err := ancrfid.RunOnce(p, cfg, 0)
		if err != nil {
			b.Fatal(err)
		}
		slots = m.TotalSlots()
	}
	if slots > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(slots), "ns/slot")
	}
}

// BenchmarkSpanEmit measures the span builder's per-slot cost: folding an
// identify + slot event pair into the open hierarchy with a no-op sink.
// This is the overhead -spans adds to every traced slot, so the bench gate
// tracks it; TestSpanEmitNoAlloc (internal/obs) pins it allocation-free.
func BenchmarkSpanEmit(b *testing.B) {
	sb := ancrfid.NewSpanBuilder(ancrfid.SpanSinkFunc(func(ancrfid.Span) {}))
	sb.RunStart(ancrfid.TraceRunStartEvent{Protocol: "BENCH", Tags: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := time.Duration(i) * time.Millisecond
		sb.TagIdentified(ancrfid.TraceIdentifyEvent{At: at})
		sb.SlotDone(ancrfid.TraceSlotEvent{Seq: i, Kind: channel.Singleton,
			Transmitters: 1, At: at})
	}
}

// BenchmarkExposition measures one Prometheus text exposition of a
// campaign-populated registry — the cost of a /metrics scrape against a
// live -serve endpoint.
func BenchmarkExposition(b *testing.B) {
	p := ancrfid.NewFCAT(2)
	reg := ancrfid.NewRegistry()
	cfg := ancrfid.SimConfig{Tags: 1000, Runs: 1, Seed: 1, Workers: 1, Metrics: reg}
	if _, err := ancrfid.Run(p, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ancrfid.WritePrometheus(io.Discard, reg); err != nil {
			b.Fatal(err)
		}
	}
}
