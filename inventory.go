package ancrfid

import (
	"github.com/ancrfid/ancrfid/internal/inventory"
)

// Whole-site inventory re-exports: the paper's motivating scenario
// (Section II-A) — a reader visits several positions, reads the tags in
// range at each, and removes duplicates, yielding the site inventory as
// the union.
type (
	// Position is a reader location on the floor, in metres.
	Position = inventory.Position
	// Item is a tagged object at a fixed location.
	Item = inventory.Item
	// Field is the set of tagged items on a site.
	Field = inventory.Field
	// InventoryConfig parameterises a whole-site read.
	InventoryConfig = inventory.Config
	// InventoryReport is the outcome of a whole-site read.
	InventoryReport = inventory.Report
	// PositionReport is the outcome of reading at one position.
	PositionReport = inventory.PositionReport
)

// NewField builds a field from explicit items.
func NewField(items []Item) *Field { return inventory.NewField(items) }

// RandomField places n freshly-generated tags uniformly over a
// side x side square floor.
func RandomField(r *RNG, n int, side float64) *Field {
	return inventory.RandomField(r, n, side)
}

// PlanGrid returns reader positions on a grid that covers a side x side
// floor with reading circles of the given radius.
func PlanGrid(side, radius float64) []Position { return inventory.PlanGrid(side, radius) }

// ReadInventory performs a whole-site read: one protocol run per position
// with duplicate removal across positions.
func ReadInventory(field *Field, cfg InventoryConfig) (InventoryReport, error) {
	return inventory.Read(field, cfg)
}
