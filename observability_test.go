package ancrfid_test

import (
	"testing"

	"github.com/ancrfid/ancrfid"
)

// TestTraceResolutionChains is the observability acceptance test: a traced
// FCAT run over 1000 tags must emit a complete event stream in which every
// tag counted in Metrics.ResolvedIDs is traceable through collision-record
// events — each resolve either decodes at store time (depth 0, no trigger)
// or is triggered by an ID the reader had already learned (a direct read or
// an earlier resolve), chaining every recovery back to a singleton slot.
func TestTraceResolutionChains(t *testing.T) {
	var (
		direct    = make(map[ancrfid.TagID]bool)
		resolved  = make(map[ancrfid.TagID]bool)
		chained   = make(map[ancrfid.TagID]bool) // resolve events seen, dup or not
		badChains int
	)
	tr := &ancrfid.TracerHooks{
		OnTagIdentified: func(ev ancrfid.TraceIdentifyEvent) {
			if ev.ViaResolution {
				resolved[ev.ID] = true
			} else {
				direct[ev.ID] = true
			}
		},
		OnRecordResolved: func(ev ancrfid.TraceResolveEvent) {
			if ev.Depth > 0 {
				// Triggered resolve: the trigger must already be known.
				if !direct[ev.Trigger] && !resolved[ev.Trigger] && !chained[ev.Trigger] {
					badChains++
				}
			}
			chained[ev.ID] = true
		},
	}

	cfg := ancrfid.SimConfig{Tags: 1000, Runs: 1, Seed: 42, Tracer: tr}
	m, err := ancrfid.RunOnce(ancrfid.NewFCAT(2), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Identified() != 1000 {
		t.Fatalf("identified %d of 1000 tags", m.Identified())
	}
	if m.ResolvedIDs == 0 {
		t.Fatal("run resolved no tags; the traceability check is vacuous")
	}
	if len(direct) != m.DirectIDs {
		t.Fatalf("%d direct identify events, Metrics.DirectIDs = %d", len(direct), m.DirectIDs)
	}
	if len(resolved) != m.ResolvedIDs {
		t.Fatalf("%d resolved identify events, Metrics.ResolvedIDs = %d", len(resolved), m.ResolvedIDs)
	}
	if badChains != 0 {
		t.Fatalf("%d resolve events had an unknown trigger", badChains)
	}
	for id := range resolved {
		if !chained[id] {
			t.Fatalf("tag %s counted as resolved but no resolve event recovered it", id)
		}
	}
}

// TestRegistryMatchesMetrics cross-checks the aggregated registry against
// protocol.Metrics for the same runs: the two accounting paths (atomic
// counters fed by the event stream versus the protocol's own tallies) must
// agree exactly.
func TestRegistryMatchesMetrics(t *testing.T) {
	for _, name := range []string{"FCAT-2", "SCAT-2", "DFSA", "EDFSA", "CRDSA", "ABS", "AQS"} {
		t.Run(name, func(t *testing.T) {
			p, err := ancrfid.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			reg := ancrfid.NewRegistry()
			res, err := ancrfid.Run(p, ancrfid.SimConfig{
				Tags: 400, Runs: 3, Seed: 9, Metrics: reg, PAckLoss: 0.1,
			})
			if err != nil {
				t.Fatal(err)
			}
			var want ancrfid.Metrics
			for _, m := range res.Runs {
				want.EmptySlots += m.EmptySlots
				want.SingletonSlots += m.SingletonSlots
				want.CollisionSlots += m.CollisionSlots
				want.DirectIDs += m.DirectIDs
				want.ResolvedIDs += m.ResolvedIDs
				want.Frames += m.Frames
				want.TagTransmissions += m.TagTransmissions
			}
			checks := []struct {
				key  string
				want int64
			}{
				{"runs.started", 3},
				{"runs.completed", 3},
				{"runs.failed", 0},
				{"slots.empty", int64(want.EmptySlots)},
				{"slots.singleton", int64(want.SingletonSlots)},
				{"slots.collision", int64(want.CollisionSlots)},
				{"ids.direct", int64(want.DirectIDs)},
				{"ids.resolved", int64(want.ResolvedIDs)},
				{"frames", int64(want.Frames)},
				{"tx.total", int64(want.TagTransmissions)},
			}
			for _, c := range checks {
				if got := reg.Value(c.key); got != c.want {
					t.Errorf("registry %s = %d, Metrics say %d", c.key, got, c.want)
				}
			}
		})
	}
}
