package ancrfid_test

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ancrfid/ancrfid"
)

// differentialGolden is the capture-hash baseline of the protocol layer:
// one SHA-256 per (protocol, channel, seed, workers) cell covering the
// aggregated Result, the byte-exact JSONL trace, and the metrics-registry
// dump of a fixed campaign. The file was generated from the monolithic
// pre-session Run implementations; the session refactor must reproduce
// every hash bit-for-bit, which is the tentpole's equivalence proof.
//
// Regenerate (only when intentionally changing observable behaviour) with:
//
//	UPDATE_GOLDEN=1 go test -run TestDifferentialGolden .
const differentialGolden = "testdata/differential.golden"

// differentialSeeds are the campaign seeds of the differential suite.
var differentialSeeds = []uint64{3, 11, 29}

// differentialWorkers exercises the sequential and the pooled campaign path.
var differentialWorkers = []int{1, 8}

// differentialCase identifies one cell of the differential matrix.
type differentialCase struct {
	proto   string
	channel string // "abstract" or "signal"
	seed    uint64
	workers int
}

func (c differentialCase) key() string {
	return fmt.Sprintf("%s/%s/seed=%d/workers=%d", c.proto, c.channel, c.seed, c.workers)
}

func differentialCases() []differentialCase {
	var cases []differentialCase
	for _, proto := range allProtocols {
		for _, ch := range []string{"abstract", "signal"} {
			for _, seed := range differentialSeeds {
				for _, workers := range differentialWorkers {
					cases = append(cases, differentialCase{proto, ch, seed, workers})
				}
			}
		}
	}
	return cases
}

// differentialConfig builds the campaign config of one cell. The abstract
// channel runs a mid-size population; the signal channel (real waveform
// mixing) runs a small one to keep the suite fast. PAckLoss exercises the
// acknowledgement-retransmission path for the ALOHA-family protocols.
func differentialConfig(c differentialCase) ancrfid.SimConfig {
	cfg := ancrfid.SimConfig{
		Tags: 200, Runs: 2, Seed: c.seed, Workers: c.workers, PAckLoss: 0.05,
	}
	if c.channel == "signal" {
		cfg.Tags = 25
		cfg.NewChannel = func(r *ancrfid.RNG) ancrfid.Channel {
			return ancrfid.NewSignalChannel(ancrfid.SignalChannelConfig{
				NoiseSigma: 0.03,
				MaxCancel:  2,
			}, r)
		}
	}
	return cfg
}

// differentialHash runs one cell and hashes everything observable about it.
func differentialHash(t *testing.T, c differentialCase) string {
	t.Helper()
	p, err := ancrfid.ByName(c.proto)
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	jsonl := ancrfid.NewJSONLTracer(&trace)
	reg := ancrfid.NewRegistry()
	cfg := differentialConfig(c)
	cfg.Tracer = jsonl
	cfg.Metrics = reg
	res, err := ancrfid.Run(p, cfg)
	if err != nil {
		t.Fatalf("%s: %v", c.key(), err)
	}
	if err := jsonl.Err(); err != nil {
		t.Fatalf("%s: trace write: %v", c.key(), err)
	}
	var dump strings.Builder
	if _, err := reg.WriteTo(&dump); err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "%#v\n", res)
	h.Write(trace.Bytes())
	h.Write([]byte(dump.String()))
	return fmt.Sprintf("%x", h.Sum(nil))
}

func readGoldenHashes(t *testing.T) map[string]string {
	t.Helper()
	f, err := os.Open(differentialGolden)
	if err != nil {
		t.Fatalf("missing differential golden (generate with UPDATE_GOLDEN=1): %v", err)
	}
	defer f.Close()
	want := make(map[string]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed golden line %q", line)
		}
		want[fields[0]] = fields[1]
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return want
}

// TestDifferentialGolden pins the complete observable behaviour of every
// protocol over both channels, three seeds and two worker counts against
// hashes captured from the pre-refactor monolithic Run implementations.
// A mismatch means the session restructuring changed results, trace bytes
// or registry contents — exactly what the tentpole forbids.
func TestDifferentialGolden(t *testing.T) {
	cases := differentialCases()
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(differentialGolden), 0o755); err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		sb.WriteString("# Capture hashes of Result + JSONL trace + registry dump per\n")
		sb.WriteString("# (protocol, channel, seed, workers) cell. See differential_test.go.\n")
		for _, c := range cases {
			sb.WriteString(c.key())
			sb.WriteByte(' ')
			sb.WriteString(differentialHash(t, c))
			sb.WriteByte('\n')
		}
		if err := os.WriteFile(differentialGolden, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s with %d cells", differentialGolden, len(cases))
		return
	}
	want := readGoldenHashes(t)
	if len(want) != len(cases) {
		t.Fatalf("golden has %d cells, expected %d", len(want), len(cases))
	}
	for _, c := range cases {
		c := c
		t.Run(c.key(), func(t *testing.T) {
			t.Parallel()
			got := differentialHash(t, c)
			if want[c.key()] == "" {
				t.Fatalf("no golden entry for %s", c.key())
			}
			if got != want[c.key()] {
				t.Errorf("behaviour drifted from pre-session baseline:\n got %s\nwant %s", got, want[c.key()])
			}
		})
	}
}
