package ancrfid_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/ancrfid/ancrfid"
)

// allProtocols is the differential-determinism roster: every protocol
// family the module implements.
var allProtocols = []string{"FCAT-2", "SCAT-2", "DFSA", "EDFSA", "CRDSA", "ABS", "AQS", "MDFSA-2", "PRALOHA-2"}

// runInstrumented runs a campaign and captures everything observable about
// it: the aggregated Result, the full JSONL trace, and the metrics
// registry dump.
func runInstrumented(t *testing.T, name string, workers int) (ancrfid.SimResult, string, string) {
	t.Helper()
	p, err := ancrfid.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	jsonl := ancrfid.NewJSONLTracer(&trace)
	reg := ancrfid.NewRegistry()
	res, err := ancrfid.Run(p, ancrfid.SimConfig{
		Tags: 300, Runs: 8, Seed: 11, PAckLoss: 0.05,
		Tracer: jsonl, Metrics: reg, Workers: workers,
	})
	if err != nil {
		t.Fatalf("%s workers=%d: %v", name, workers, err)
	}
	if err := jsonl.Err(); err != nil {
		t.Fatalf("%s workers=%d: trace write: %v", name, workers, err)
	}
	var dump strings.Builder
	if _, err := reg.WriteTo(&dump); err != nil {
		t.Fatal(err)
	}
	return res, trace.String(), dump.String()
}

// TestParallelDeterminismAllProtocols is the acceptance test of the
// parallel campaign runner: for every protocol, a campaign run on 8
// workers must be indistinguishable from a sequential one — identical
// Result structs, byte-identical JSONL traces, identical registry dumps.
func TestParallelDeterminismAllProtocols(t *testing.T) {
	for _, name := range allProtocols {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			seqRes, seqTrace, seqReg := runInstrumented(t, name, 1)
			parRes, parTrace, parReg := runInstrumented(t, name, 8)
			if !reflect.DeepEqual(seqRes, parRes) {
				t.Error("Result differs between Workers=1 and Workers=8")
			}
			if seqTrace != parTrace {
				t.Errorf("JSONL trace differs between Workers=1 and Workers=8 (%d vs %d bytes)",
					len(seqTrace), len(parTrace))
			}
			if seqReg != parReg {
				t.Errorf("registry dump differs:\nseq:\n%s\npar:\n%s", seqReg, parReg)
			}
			if seqTrace == "" || !strings.Contains(seqReg, "runs.completed 8") {
				t.Fatal("instrumentation vacuous: empty trace or missing runs.completed")
			}
		})
	}
}
