// ancdemo walks through analog network coding at the signal level: two
// tags transmit simultaneously, the reader records the mixed MSK waveform,
// later hears one tag alone, and recovers the other tag's ID by estimating
// and subtracting the known signal — the RFID transplant of the Alice-Bob
// example from Katti et al. that the paper builds on (Section II-B).
//
// Run with:
//
//	go run ./examples/ancdemo
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	"github.com/ancrfid/ancrfid"
)

func main() {
	r := ancrfid.NewRNG(2010)

	// Two active tags somewhere on the warehouse floor, each with its own
	// channel attenuation and phase as seen by the reader.
	tags := ancrfid.Population(r, 2)
	alice, bob := tags[0], tags[1]

	const (
		spb   = ancrfid.SamplesPerBit
		noise = 0.05
	)
	// Tag B's oscillator runs slightly off the reader's frequency, as
	// independent oscillators always do; the resulting relative-phase sweep
	// is what the amplitude estimator below relies on.
	aliceWave := ancrfid.ScaleWaveform(ancrfid.ModulateID(alice, spb), cmplx.Rect(0.9, 0.7))
	bobWave := ancrfid.ApplyFrequencyOffset(
		ancrfid.ScaleWaveform(ancrfid.ModulateID(bob, spb), cmplx.Rect(0.6, -1.9)), 0.04)

	fmt.Println("tag A:", alice)
	fmt.Println("tag B:", bob)

	// Slot 1 — both tags report: the reader receives the superposition.
	// MSK's capture effect can demodulate the stronger signal right through
	// the interference, so the reader checks the envelope: one MSK signal
	// has constant magnitude, a mix does not.
	mixed := ancrfid.AddNoise(ancrfid.MixWaveforms(aliceWave, bobWave), noise, r)
	if ancrfid.EnvelopeFlat(mixed, noise) {
		log.Fatal("a 2-collision must not pass the envelope test")
	}
	fmt.Println("\nslot 1: collision — envelope test flags superposed signals; mixed signal recorded")

	// The reader can already tell two signals are present and how strong:
	// the energy-statistics estimator from the paper's Section II-B.
	a, b, ok := ancrfid.EstimateTwoAmplitudes(mixed)
	if !ok {
		log.Fatal("amplitude estimation failed")
	}
	fmt.Printf("        energy equations give amplitudes %.2f and %.2f (true 0.90 and 0.60)\n", a, b)

	// Slot 2 — only tag A reports; the reader decodes it cleanly.
	aloneA := ancrfid.AddNoise(ancrfid.MixWaveforms(aliceWave), noise, r)
	gotA, ok := ancrfid.DecodeWaveform(aloneA, spb)
	if !ok || gotA != alice {
		log.Fatal("singleton decode of tag A failed")
	}
	fmt.Println("\nslot 2: singleton — tag A decoded:", gotA)

	// Resolution: re-encode the known ID, estimate its complex gain inside
	// the recorded mix by least squares, cancel it, and decode the residual.
	ref := ancrfid.ModulateID(gotA, spb)
	gains := ancrfid.EstimateGains(mixed, []ancrfid.Waveform{ref})
	residual := ancrfid.CancelWaveforms(mixed, []ancrfid.Waveform{ref}, gains)
	gotB, ok := ancrfid.DecodeWaveform(residual, spb)
	if !ok {
		log.Fatal("residual decode failed — try lowering the noise")
	}
	fmt.Printf("\nresolution: cancelled tag A (estimated gain %.2f∠%.2f rad) from the record\n",
		cmplx.Abs(gains[0]), cmplx.Phase(gains[0]))
	fmt.Println("            residual decodes with valid CRC:", gotB)
	if gotB == bob {
		fmt.Println("\ntag B was identified without ever being heard alone — the")
		fmt.Println("collision slot carried one tag ID after all (paper, Section II).")
	}
}
