// Quickstart: read a field of RFID tags with FCAT (collision-aware, using
// analog network coding) and compare against the classical DFSA reader.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/ancrfid/ancrfid"
)

func main() {
	const tags = 5000

	cfg := ancrfid.SimConfig{
		Tags: tags,
		Runs: 10,
		Seed: 42,
	}

	fcat := ancrfid.NewFCAT(2) // today's ANC resolves 2-collisions
	dfsa := ancrfid.NewDFSA()

	fres, err := ancrfid.Run(fcat, cfg)
	if err != nil {
		log.Fatal(err)
	}
	dres, err := ancrfid.Run(dfsa, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("reading %d tags over a %.0f kbit/s channel (Philips I-Code timing)\n\n",
		tags, 1e-3/ancrfid.ICodeTiming().BitDuration.Seconds())

	fmt.Printf("%-8s %12s %14s %20s\n", "reader", "tags/sec", "slots used", "IDs from collisions")
	fmt.Printf("%-8s %12.1f %14.0f %20.0f\n", fres.Protocol,
		fres.Throughput.Mean, fres.TotalSlots.Mean, fres.ResolvedIDs.Mean)
	fmt.Printf("%-8s %12.1f %14.0f %20.0f\n", dres.Protocol,
		dres.Throughput.Mean, dres.TotalSlots.Mean, dres.ResolvedIDs.Mean)

	gain := (fres.Throughput.Mean/dres.Throughput.Mean - 1) * 100
	fmt.Printf("\nFCAT-2 reads the field %.1f%% faster: collision slots that DFSA\n", gain)
	fmt.Printf("discards are recorded and later resolved by subtracting known\n")
	fmt.Printf("signals (analog network coding), so almost every slot carries one ID.\n")
	fmt.Printf("\ntheoretical bounds: ALOHA %.1f tags/s, ANC(lambda=2) %.1f tags/s\n",
		ancrfid.AlohaBound(ancrfid.ICodeTiming()), ancrfid.ANCBound(ancrfid.ICodeTiming(), 2))
}
