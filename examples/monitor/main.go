// monitor runs the paper's periodic-reading loop (Section I: "Periodically
// reading the IDs of the tags is an important function to guard against
// administration error, vendor fraud and employee theft"): a dock door is
// read every round while pallets arrive and depart, and each round's
// report lists exactly what changed, comparing the adaptive tree reader
// (cheap re-reads, expensive on churn) against the collision-aware FCAT
// reader (flat cost).
//
// The per-round report is assembled live from the reader's telemetry plane:
// an ancrfid.SpanBuilder folds the event stream into hierarchical spans
// (run > frame > slot > decode activity) whose stream drives the slot
// counts, the ANC-resolution tally and the on-air time, while an
// ancrfid.HealthMonitor scores each round's degradation. Only the ID diff
// itself still reads identification events directly — spans deliberately
// carry no 96-bit tag IDs. The report needs no access to the simulation's
// ground truth: it sees exactly what a reader in the field would see.
//
// Run with:
//
//	go run ./examples/monitor
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/ancrfid/ancrfid"
)

// roundTelemetry accumulates one reading round from the telemetry plane.
type roundTelemetry struct {
	ids      map[ancrfid.TagID]struct{}
	builder  *ancrfid.SpanBuilder
	health   *ancrfid.HealthMonitor
	slots    int // SpanSlot spans seen
	resolved int // SpanIdentify spans flagged via-resolution
	airTime  time.Duration
}

func newRoundTelemetry() *roundTelemetry {
	rt := &roundTelemetry{ids: make(map[ancrfid.TagID]struct{})}
	rt.builder = ancrfid.NewSpanBuilder(ancrfid.SpanSinkFunc(func(s ancrfid.Span) {
		switch s.Kind {
		case ancrfid.SpanSlot:
			rt.slots++
		case ancrfid.SpanIdentify:
			if s.N1 == 1 {
				rt.resolved++
			}
		case ancrfid.SpanRun:
			rt.airTime = s.End - s.Start
		}
	}))
	rt.health = ancrfid.NewHealthMonitor(ancrfid.HealthConfig{})
	return rt
}

// tracer returns the round's composite observer: the span builder and the
// health monitor consume the full stream; a minimal hook collects the IDs
// the change report diffs.
func (rt *roundTelemetry) tracer() ancrfid.Tracer {
	return ancrfid.MultiTracer(
		&ancrfid.TracerHooks{
			OnTagIdentified: func(ev ancrfid.TraceIdentifyEvent) {
				rt.ids[ev.ID] = struct{}{}
			},
		},
		rt.builder,
		rt.health,
	)
}

// finish flushes the round's open spans (run and campaign close on Close).
func (rt *roundTelemetry) finish() { rt.builder.Close() }

func main() {
	r := ancrfid.NewRNG(99)

	// The dock starts with 3000 tagged pallets.
	present := make(map[ancrfid.TagID]struct{})
	var serial uint64
	addPallets := func(n int) {
		for i := 0; i < n; i++ {
			present[ancrfid.TagIDFromParts(500, 1, serial)] = struct{}{}
			serial++
		}
	}
	removePallets := func(n int) {
		for id := range present {
			if n == 0 {
				break
			}
			delete(present, id)
			n--
		}
	}
	addPallets(3000)

	aqs := ancrfid.NewAQSReader()
	fcat := ancrfid.NewFCAT(2)
	known := make(map[ancrfid.TagID]struct{})

	fmt.Println("round  present  arrived  departed  resolved  AQS slots  FCAT slots  FCAT air  health")
	for round := 1; round <= 6; round++ {
		// Overnight churn: trucks come and go.
		switch round {
		case 2:
			removePallets(400)
		case 3:
			addPallets(900)
		case 5:
			removePallets(1500)
			addPallets(200)
		}

		tags := make([]ancrfid.TagID, 0, len(present))
		for id := range present {
			tags = append(tags, id)
		}

		// Each reader streams its telemetry into its own collector; the AQS
		// one is only used for its slot count here, the FCAT one drives the
		// change report.
		aqsTel, fcatTel := newRoundTelemetry(), newRoundTelemetry()
		if _, err := aqs.RunRound(freshEnv(r, tags, aqsTel.tracer())); err != nil {
			log.Fatal(err)
		}
		if _, err := fcat.Run(freshEnv(r, tags, fcatTel.tracer())); err != nil {
			log.Fatal(err)
		}
		aqsTel.finish()
		fcatTel.finish()

		// Diff the streamed reading against the last known inventory.
		arrived, departed := 0, 0
		for id := range fcatTel.ids {
			if _, ok := known[id]; !ok {
				arrived++
			}
		}
		for id := range known {
			if _, ok := fcatTel.ids[id]; !ok {
				departed++
			}
		}
		known = fcatTel.ids

		fmt.Printf("%5d  %7d  %7d  %8d  %8d  %9d  %10d  %8v  %6.0f\n",
			round, len(present), arrived, departed, fcatTel.resolved,
			aqsTel.slots, fcatTel.slots, fcatTel.airTime.Round(time.Millisecond),
			fcatTel.health.Score())
	}

	fmt.Println("\nAQS re-reads an unchanged dock almost for free but pays to rebuild")
	fmt.Println("its tree under churn; FCAT's cost tracks the population size alone.")
}

func freshEnv(r *ancrfid.RNG, tags []ancrfid.TagID, tr ancrfid.Tracer) *ancrfid.Env {
	return &ancrfid.Env{
		RNG:     r.Split(),
		Tags:    tags,
		Channel: ancrfid.NewAbstractChannel(ancrfid.AbstractChannelConfig{Lambda: 2}, r.Split()),
		Timing:  ancrfid.ICodeTiming(),
		Tracer:  tr,
	}
}
