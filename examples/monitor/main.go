// monitor runs the paper's periodic-reading loop (Section I: "Periodically
// reading the IDs of the tags is an important function to guard against
// administration error, vendor fraud and employee theft"): a dock door is
// read every round while pallets arrive and depart, and each round's
// report lists exactly what changed, comparing the adaptive tree reader
// (cheap re-reads, expensive on churn) against the collision-aware FCAT
// reader (flat cost).
//
// The per-round inventory is assembled live from the reader's event
// stream: an ancrfid.TracerHooks observer collects every identification
// event as it happens (tagging each ID with how it was obtained), so the
// arrival/departure report needs no access to the simulation's ground
// truth — it sees exactly what a reader in the field would see.
//
// Run with:
//
//	go run ./examples/monitor
package main

import (
	"fmt"
	"log"

	"github.com/ancrfid/ancrfid"
)

// inventory accumulates one reading round from the event stream.
type inventory struct {
	ids      map[ancrfid.TagID]struct{}
	resolved int // IDs recovered from collision records via ANC
	slots    int
}

// tracer returns the event-stream observer that fills the inventory.
func (inv *inventory) tracer() ancrfid.Tracer {
	return &ancrfid.TracerHooks{
		OnTagIdentified: func(ev ancrfid.TraceIdentifyEvent) {
			inv.ids[ev.ID] = struct{}{}
			if ev.ViaResolution {
				inv.resolved++
			}
		},
		OnSlotDone: func(ev ancrfid.TraceSlotEvent) {
			inv.slots++
		},
	}
}

func newInventory() *inventory {
	return &inventory{ids: make(map[ancrfid.TagID]struct{})}
}

func main() {
	r := ancrfid.NewRNG(99)

	// The dock starts with 3000 tagged pallets.
	present := make(map[ancrfid.TagID]struct{})
	var serial uint64
	addPallets := func(n int) {
		for i := 0; i < n; i++ {
			present[ancrfid.TagIDFromParts(500, 1, serial)] = struct{}{}
			serial++
		}
	}
	removePallets := func(n int) {
		for id := range present {
			if n == 0 {
				break
			}
			delete(present, id)
			n--
		}
	}
	addPallets(3000)

	aqs := ancrfid.NewAQSReader()
	fcat := ancrfid.NewFCAT(2)
	known := make(map[ancrfid.TagID]struct{})

	fmt.Println("round  present  arrived  departed  resolved  AQS slots  FCAT slots")
	for round := 1; round <= 6; round++ {
		// Overnight churn: trucks come and go.
		switch round {
		case 2:
			removePallets(400)
		case 3:
			addPallets(900)
		case 5:
			removePallets(1500)
			addPallets(200)
		}

		tags := make([]ancrfid.TagID, 0, len(present))
		for id := range present {
			tags = append(tags, id)
		}

		// Each reader streams its events into its own inventory; the AQS
		// inventory is only used for its slot count here, the FCAT one
		// drives the change report.
		aqsInv, fcatInv := newInventory(), newInventory()
		if _, err := aqs.RunRound(freshEnv(r, tags, aqsInv.tracer())); err != nil {
			log.Fatal(err)
		}
		if _, err := fcat.Run(freshEnv(r, tags, fcatInv.tracer())); err != nil {
			log.Fatal(err)
		}

		// Diff the streamed reading against the last known inventory.
		arrived, departed := 0, 0
		for id := range fcatInv.ids {
			if _, ok := known[id]; !ok {
				arrived++
			}
		}
		for id := range known {
			if _, ok := fcatInv.ids[id]; !ok {
				departed++
			}
		}
		known = fcatInv.ids

		fmt.Printf("%5d  %7d  %7d  %8d  %8d  %9d  %10d\n",
			round, len(present), arrived, departed, fcatInv.resolved,
			aqsInv.slots, fcatInv.slots)
	}

	fmt.Println("\nAQS re-reads an unchanged dock almost for free but pays to rebuild")
	fmt.Println("its tree under churn; FCAT's cost tracks the population size alone.")
}

func freshEnv(r *ancrfid.RNG, tags []ancrfid.TagID, tr ancrfid.Tracer) *ancrfid.Env {
	return &ancrfid.Env{
		RNG:     r.Split(),
		Tags:    tags,
		Channel: ancrfid.NewAbstractChannel(ancrfid.AbstractChannelConfig{Lambda: 2}, r.Split()),
		Timing:  ancrfid.ICodeTiming(),
		Tracer:  tr,
	}
}
