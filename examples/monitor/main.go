// monitor runs the paper's periodic-reading loop (Section I: "Periodically
// reading the IDs of the tags is an important function to guard against
// administration error, vendor fraud and employee theft"): a dock door is
// read every round while pallets arrive and depart, and each round's
// report lists exactly what changed, comparing the adaptive tree reader
// (cheap re-reads, expensive on churn) against the collision-aware FCAT
// reader (flat cost).
//
// Run with:
//
//	go run ./examples/monitor
package main

import (
	"fmt"
	"log"

	"github.com/ancrfid/ancrfid"
)

func main() {
	r := ancrfid.NewRNG(99)

	// The dock starts with 3000 tagged pallets.
	present := make(map[ancrfid.TagID]struct{})
	var serial uint64
	addPallets := func(n int) {
		for i := 0; i < n; i++ {
			present[ancrfid.TagIDFromParts(500, 1, serial)] = struct{}{}
			serial++
		}
	}
	removePallets := func(n int) {
		for id := range present {
			if n == 0 {
				break
			}
			delete(present, id)
			n--
		}
	}
	addPallets(3000)

	aqs := ancrfid.NewAQSReader()
	fcat := ancrfid.NewFCAT(2)
	known := make(map[ancrfid.TagID]struct{})

	fmt.Println("round  present  arrived  departed  AQS slots  FCAT slots")
	for round := 1; round <= 6; round++ {
		// Overnight churn: trucks come and go.
		switch round {
		case 2:
			removePallets(400)
		case 3:
			addPallets(900)
		case 5:
			removePallets(1500)
			addPallets(200)
		}

		tags := make([]ancrfid.TagID, 0, len(present))
		for id := range present {
			tags = append(tags, id)
		}

		aqsMetrics, err := aqs.RunRound(freshEnv(r, tags))
		if err != nil {
			log.Fatal(err)
		}
		fcatMetrics, err := fcat.Run(freshEnv(r, tags))
		if err != nil {
			log.Fatal(err)
		}

		// Diff this round's reading against the last known inventory.
		seen := make(map[ancrfid.TagID]struct{}, len(tags))
		for _, id := range tags {
			seen[id] = struct{}{}
		}
		arrived, departed := 0, 0
		for id := range seen {
			if _, ok := known[id]; !ok {
				arrived++
			}
		}
		for id := range known {
			if _, ok := seen[id]; !ok {
				departed++
			}
		}
		known = seen

		fmt.Printf("%5d  %7d  %7d  %8d  %9d  %10d\n",
			round, len(present), arrived, departed,
			aqsMetrics.TotalSlots(), fcatMetrics.TotalSlots())
	}

	fmt.Println("\nAQS re-reads an unchanged dock almost for free but pays to rebuild")
	fmt.Println("its tree under churn; FCAT's cost tracks the population size alone.")
}

func freshEnv(r *ancrfid.RNG, tags []ancrfid.TagID) *ancrfid.Env {
	return &ancrfid.Env{
		RNG:     r.Split(),
		Tags:    tags,
		Channel: ancrfid.NewAbstractChannel(ancrfid.AbstractChannelConfig{Lambda: 2}, r.Split()),
		Timing:  ancrfid.ICodeTiming(),
	}
}
