// warehouse simulates the paper's motivating deployment as a continuous
// inventory problem: goods stream on a conveyor through a dock-door read
// zone, so the tag population changes while the reader runs — tags arrive
// with the belt, dwell in the antenna field for the transit time, and
// leave whether or not they were read. The collision-recovery literature
// (Ricciato & Castiglione; Fyhn et al.) evaluates exactly this regime;
// the resumable-session layer (docs/architecture.md) makes it expressible
// here: the reader session keeps running while the workload admits and
// revokes tags.
//
// The demo sweeps belt speeds — shrinking the in-field dwell — and reports
// identification latency percentiles and missed reads per protocol, then
// shows a dock-door portal with pallet bursts.
//
// Run with:
//
//	go run ./examples/warehouse
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/ancrfid/ancrfid"
)

func main() {
	const (
		rate    = 40.0 // items per second past the reader
		horizon = 20 * time.Second
		runs    = 5
	)

	fmt.Printf("conveyor through a dock-door read zone: %.0f items/s for %v (mean of %d runs)\n\n",
		rate, horizon, runs)

	// Sweep the belt speed: shrinking the read-zone dwell from 2 s down to
	// 100 ms. Faster belts move more stock but give the reader less time
	// per tag — once the dwell drops toward the identification latency
	// tail, missed reads are the cost.
	fmt.Println("belt-speed sweep, FCAT-2 reader:")
	fmt.Println("  dwell   admitted  identified  missed   p50      p90      p99")
	for _, dwell := range []time.Duration{2 * time.Second, 500 * time.Millisecond, 200 * time.Millisecond, 100 * time.Millisecond} {
		res := mustDynamic("FCAT-2", ancrfid.ConveyorWorkload(rate, dwell, horizon), runs)
		lat := allLatencies(res)
		fmt.Printf("  %-6v  %8.1f  %10.1f  %6.1f   %-7v  %-7v  %-7v\n",
			dwell, res.Admitted.Mean, res.Identified.Mean, res.DepartedUnread.Mean,
			ancrfid.LatencyPercentile(lat, 50).Round(time.Millisecond),
			ancrfid.LatencyPercentile(lat, 90).Round(time.Millisecond),
			ancrfid.LatencyPercentile(lat, 99).Round(time.Millisecond))
	}

	// Protocol comparison at a demanding operating point: 200 ms dwell.
	// At a light trickle of arrivals the simpler readers have the shorter
	// latency tail (FCAT's estimator and frame machinery adds overhead per
	// arrival); the burst portal below is where collision-aware resolution
	// pays for itself.
	fmt.Println("\nprotocol comparison at 200ms dwell:")
	fmt.Println("  protocol  identified  missed   p50      p99")
	for _, name := range []string{"FCAT-2", "DFSA", "ABS"} {
		res := mustDynamic(name, ancrfid.ConveyorWorkload(rate, 200*time.Millisecond, horizon), runs)
		lat := allLatencies(res)
		fmt.Printf("  %-8s  %10.1f  %6.1f   %-7v  %-7v\n",
			name, res.Identified.Mean, res.DepartedUnread.Mean,
			ancrfid.LatencyPercentile(lat, 50).Round(time.Millisecond),
			ancrfid.LatencyPercentile(lat, 99).Round(time.Millisecond))
	}

	// Dock-door portal: pallets of 24 tagged cases arrive in bursts and
	// the whole pallet must be read before the forklift clears the portal
	// (~3 s). Burst collisions are where ANC resolution earns its keep.
	fmt.Println("\ndock-door portal, pallets of 24 cases, ~3s in the portal:")
	fmt.Println("  protocol  pallets/s offered  identified  missed")
	for _, name := range []string{"FCAT-2", "DFSA"} {
		res := mustDynamic(name, ancrfid.PortalWorkload(24, 0.5, 3*time.Second, horizon), runs)
		fmt.Printf("  %-8s  %17.1f  %10.1f  %6.1f\n",
			name, 0.5, res.Identified.Mean, res.DepartedUnread.Mean)
	}
	fmt.Println("\nevery admitted tag is accounted for: identified, missed (departed")
	fmt.Println("unread), or still in the field at cutoff — the workload layer's")
	fmt.Println("population accounting is total (see docs/architecture.md).")
}

// mustDynamic runs one dynamic campaign and exits on error.
func mustDynamic(proto string, wl ancrfid.WorkloadConfig, runs int) ancrfid.DynamicSimResult {
	p, err := ancrfid.ByName(proto)
	if err != nil {
		log.Fatal(err)
	}
	sp, ok := ancrfid.AsSession(p)
	if !ok {
		log.Fatalf("%s does not support sessions", proto)
	}
	res, err := ancrfid.RunDynamic(sp, ancrfid.DynamicSimConfig{
		Config:   ancrfid.SimConfig{Tags: 0, Runs: runs, Seed: 77, Workers: 4},
		Workload: wl,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

// allLatencies pools the identification latencies of every run.
func allLatencies(res ancrfid.DynamicSimResult) []time.Duration {
	var lat []time.Duration
	for i := range res.Runs {
		lat = append(lat, res.Runs[i].Latencies()...)
	}
	return lat
}
