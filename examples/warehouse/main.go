// warehouse simulates the paper's motivating scenario (Sections I and
// II-A): periodic inventory of a large warehouse with battery-powered
// active tags. A single reader cannot cover the whole floor, so it reads
// from a planned grid of positions and removes duplicate IDs; the full
// inventory is the union. A second pass demonstrates the adaptive
// query-splitting reader re-reading an unchanged population cheaply, and
// the collision-aware FCAT reader doing the same bulk read in a fraction
// of the air time.
//
// Run with:
//
//	go run ./examples/warehouse
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/ancrfid/ancrfid"
)

func main() {
	const (
		floorSide   = 120.0 // metres
		readerRange = 50.0  // metres; active tags have long range
		items       = 12000
		vendors     = 6
	)
	r := ancrfid.NewRNG(77)

	// Stock the floor with structured EPC-style IDs: each item carries its
	// vendor (manager), product class and serial — the metadata the audit
	// below groups by.
	stock := make([]ancrfid.Item, items)
	expected := make([]ancrfid.TagID, items)
	for i := range stock {
		id := ancrfid.TagIDFromParts(uint32(1000+i%vendors), uint16(i%37), uint64(i))
		stock[i] = ancrfid.Item{ID: id, X: floorSide * r.Float64(), Y: floorSide * r.Float64()}
		expected[i] = id
	}
	field := ancrfid.NewField(stock)
	positions := ancrfid.PlanGrid(floorSide, readerRange)

	fmt.Printf("inventory of %d tagged items, %d planned positions, FCAT-2 reader\n\n",
		items, len(positions))

	report, err := ancrfid.ReadInventory(field, ancrfid.InventoryConfig{
		Protocol:  ancrfid.NewFCAT(2),
		Positions: positions,
		Radius:    readerRange,
		RNG:       r,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, pr := range report.Positions {
		fmt.Printf("position %d (%3.0f,%3.0f): %5d tags in range, %5d new, %5d duplicate, %6.1fs air time\n",
			i+1, pr.Position.X, pr.Position.Y, pr.InRange, pr.NewIDs, pr.Duplicates, pr.Metrics.OnAir.Seconds())
	}
	fmt.Printf("\ncollected %d of %d unique IDs (coverage %.1f%%) in %.1fs of air time; %d duplicate reads removed\n",
		len(report.Inventory), items, 100*report.Coverage(field), report.OnAir.Seconds(), report.Duplicates)
	if report.Missed > 0 {
		fmt.Printf("%d items are outside every position — extend the grid\n", report.Missed)
	}

	// The audit (the paper's motivating application, Section I): someone
	// removed a pallet overnight. The next periodic read flags exactly the
	// missing serials, grouped by vendor.
	gone := map[ancrfid.TagID]struct{}{}
	for i := 4000; i < 4017; i++ { // a mixed pallet walks off overnight
		gone[expected[i]] = struct{}{}
	}
	var remaining []ancrfid.Item
	for _, it := range stock {
		if _, stolen := gone[it.ID]; !stolen {
			remaining = append(remaining, it)
		}
	}
	audit, err := ancrfid.ReadInventory(ancrfid.NewField(remaining), ancrfid.InventoryConfig{
		Protocol:  ancrfid.NewFCAT(2),
		Positions: positions,
		Radius:    readerRange,
		RNG:       r,
	})
	if err != nil {
		log.Fatal(err)
	}
	missing := audit.Missing(expected)
	fmt.Printf("\naudit pass: %d items missing against the book inventory\n", len(missing))
	byVendor := map[uint32]int{}
	for _, id := range missing {
		byVendor[id.Manager()]++
	}
	vendorIDs := make([]int, 0, len(byVendor))
	for v := range byVendor {
		vendorIDs = append(vendorIDs, int(v))
	}
	sort.Ints(vendorIDs)
	for _, v := range vendorIDs {
		fmt.Printf("  vendor %d: %d items unaccounted for\n", v, byVendor[uint32(v)])
	}

	// Periodic re-read: the next day's pass over one position, comparing
	// the adaptive tree reader against collision-aware FCAT.
	fmt.Println("\nperiodic re-read of position 1 (unchanged population):")
	inRange := field.InRange(positions[0], readerRange)

	aqs := ancrfid.NewAQSReader()
	round1, err := aqs.RunRound(freshEnv(r, inRange))
	if err != nil {
		log.Fatal(err)
	}
	round2, err := aqs.RunRound(freshEnv(r, inRange))
	if err != nil {
		log.Fatal(err)
	}
	fcat, err := ancrfid.NewFCAT(2).Run(freshEnv(r, inRange))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  AQS first round:  %5d slots, %6.1fs (builds the query tree)\n", round1.TotalSlots(), round1.OnAir.Seconds())
	fmt.Printf("  AQS re-read:      %5d slots, %6.1fs (replays retained queries)\n", round2.TotalSlots(), round2.OnAir.Seconds())
	fmt.Printf("  FCAT-2 cold read: %5d slots, %6.1fs (ANC on collision slots)\n", fcat.TotalSlots(), fcat.OnAir.Seconds())
	fmt.Println("\nnote how the query tree suffers under structured (non-uniform) IDs —")
	fmt.Println("sequential serials share long prefixes — while the probabilistic FCAT")
	fmt.Println("reader is distribution-independent (paper, Section VII).")
}

func freshEnv(r *ancrfid.RNG, tags []ancrfid.TagID) *ancrfid.Env {
	return &ancrfid.Env{
		RNG:     r.Split(),
		Tags:    tags,
		Channel: ancrfid.NewAbstractChannel(ancrfid.AbstractChannelConfig{Lambda: 2}, r.Split()),
		Timing:  ancrfid.ICodeTiming(),
	}
}
