// noisy studies how collision-aware reading degrades in hostile channels
// (paper, Section IV-E): when noise spoils collision records, FCAT loses
// its ANC gain slot by slot but never breaks — tags retransmit until
// acknowledged — and in the limit where no record resolves it converges to
// plain framed-ALOHA behaviour, which is when the paper recommends
// switching to a contention-only protocol.
//
// Two sweeps are shown: the abstract channel's record-spoil probability,
// and real AWGN on the physical-layer channel.
//
// Run with:
//
//	go run ./examples/noisy
package main

import (
	"errors"
	"fmt"
	"log"

	"github.com/ancrfid/ancrfid"
)

func main() {
	const tags = 2000

	fmt.Println("FCAT-2 under record-spoiling noise (abstract channel, 2000 tags):")
	fmt.Printf("%22s %12s %18s\n", "P(record spoiled)", "tags/sec", "IDs via ANC")
	for _, pBad := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
		pBad := pBad
		cfg := ancrfid.SimConfig{
			Tags: tags, Runs: 5, Seed: 11,
			NewChannel: func(r *ancrfid.RNG) ancrfid.Channel {
				return ancrfid.NewAbstractChannel(ancrfid.AbstractChannelConfig{
					Lambda:        2,
					PUnresolvable: pBad,
				}, r)
			},
		}
		res, err := ancrfid.Run(ancrfid.NewFCAT(2), cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%22.2f %12.1f %18.0f\n", pBad, res.Throughput.Mean, res.ResolvedIDs.Mean)
	}
	dfsa, err := ancrfid.Run(ancrfid.NewDFSA(), ancrfid.SimConfig{Tags: tags, Runs: 5, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%22s %12.1f %18s   <- contention-only reference\n", "DFSA", dfsa.Throughput.Mean, "-")

	fmt.Println("\nFCAT-2 over the physical-layer channel (MSK + AWGN, 300 tags):")
	fmt.Printf("%22s %12s %18s\n", "AWGN sigma", "tags/sec", "IDs via ANC")
	for _, sigma := range []float64{0.02, 0.05, 0.1, 0.2, 0.35} {
		sigma := sigma
		cfg := ancrfid.SimConfig{
			Tags: 300, Runs: 3, Seed: 11,
			NewChannel: func(r *ancrfid.RNG) ancrfid.Channel {
				return ancrfid.NewSignalChannel(ancrfid.SignalChannelConfig{
					NoiseSigma: sigma,
					MaxCancel:  2,
				}, r)
			},
		}
		res, err := ancrfid.Run(ancrfid.NewFCAT(2), cfg)
		if errors.Is(err, ancrfid.ErrNoProgress) {
			fmt.Printf("%22.2f %12s %18s   <- even singletons fail CRC: field unreadable\n", sigma, "-", "-")
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%22.2f %12.1f %18.0f\n", sigma, res.Throughput.Mean, res.ResolvedIDs.Mean)
	}
	fmt.Println("\nthe ANC gain shrinks with the share of resolvable records, and with no")
	fmt.Println("resolvable records at all a contention-only reader (DFSA) is the better")
	fmt.Println("choice — exactly the paper's recommendation for hostile channels.")
}
