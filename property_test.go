package ancrfid_test

import (
	"testing"
	"testing/quick"

	"github.com/ancrfid/ancrfid"
)

// TestProtocolInvariantsQuick property-tests every protocol over random
// small configurations: whatever the population size, seed, ANC capability
// and mild channel noise, a run must terminate, identify every tag exactly
// once, and keep its slot accounting consistent.
func TestProtocolInvariantsQuick(t *testing.T) {
	protocols := []func() ancrfid.Protocol{
		func() ancrfid.Protocol { return ancrfid.NewFCAT(2) },
		func() ancrfid.Protocol { return ancrfid.NewFCAT(3) },
		func() ancrfid.Protocol { return ancrfid.NewSCAT(2) },
		func() ancrfid.Protocol { return ancrfid.NewDFSA() },
		func() ancrfid.Protocol { return ancrfid.NewEDFSA() },
		func() ancrfid.Protocol { return ancrfid.NewABS() },
		func() ancrfid.Protocol { return ancrfid.NewAQS() },
		func() ancrfid.Protocol { return ancrfid.NewCRDSA() },
	}

	prop := func(seed uint64, nRaw uint16, protoRaw, lambdaRaw uint8, noiseRaw uint8) bool {
		n := int(nRaw%600) + 1
		lambda := int(lambdaRaw%3) + 2
		pBad := float64(noiseRaw%4) * 0.15 // 0, 0.15, 0.30, 0.45
		p := protocols[int(protoRaw)%len(protocols)]()

		cfg := ancrfid.SimConfig{
			Tags: n, Runs: 1, Seed: seed, Lambda: lambda,
			NewChannel: func(r *ancrfid.RNG) ancrfid.Channel {
				return ancrfid.NewAbstractChannel(ancrfid.AbstractChannelConfig{
					Lambda:        lambda,
					PUnresolvable: pBad,
				}, r)
			},
		}
		m, err := ancrfid.RunOnce(p, cfg, 0)
		if err != nil {
			t.Logf("%s N=%d lambda=%d pBad=%.2f: %v", p.Name(), n, lambda, pBad, err)
			return false
		}
		if m.Identified() != n {
			t.Logf("%s N=%d: identified %d", p.Name(), n, m.Identified())
			return false
		}
		if m.TotalSlots() != m.EmptySlots+m.SingletonSlots+m.CollisionSlots {
			t.Logf("%s: slot accounting inconsistent", p.Name())
			return false
		}
		if m.OnAir <= 0 || m.TagTransmissions < n {
			t.Logf("%s: degenerate accounting %+v", p.Name(), m)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestDuplicateFreeIdentificationQuick checks, across random configurations
// with acknowledgement loss, that no protocol ever reports the same ID
// twice through the OnIdentified callback.
func TestDuplicateFreeIdentificationQuick(t *testing.T) {
	names := []string{"FCAT-2", "SCAT-2", "DFSA", "EDFSA", "CRDSA"}
	prop := func(seed uint64, nRaw uint16, protoRaw uint8, lossRaw uint8) bool {
		n := int(nRaw%400) + 1
		loss := float64(lossRaw%5) * 0.1
		p, err := ancrfid.ByName(names[int(protoRaw)%len(names)])
		if err != nil {
			return false
		}
		r := ancrfid.NewRNG(seed)
		counts := make(map[ancrfid.TagID]int)
		env := &ancrfid.Env{
			RNG:      r,
			Tags:     ancrfid.Population(r, n),
			Channel:  ancrfid.NewAbstractChannel(ancrfid.AbstractChannelConfig{Lambda: 2}, r),
			Timing:   ancrfid.ICodeTiming(),
			PAckLoss: loss,
			OnIdentified: func(id ancrfid.TagID, _ bool) {
				counts[id]++
			},
		}
		if _, err := p.Run(env); err != nil {
			t.Logf("%s N=%d loss=%.1f: %v", p.Name(), n, loss, err)
			return false
		}
		if len(counts) != n {
			t.Logf("%s N=%d loss=%.1f: %d unique callbacks", p.Name(), n, loss, len(counts))
			return false
		}
		for _, c := range counts {
			if c != 1 {
				t.Logf("%s: duplicate callback", p.Name())
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
