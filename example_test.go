package ancrfid_test

import (
	"fmt"

	"github.com/ancrfid/ancrfid"
)

// The simplest use: run a collision-aware read over a simulated field and
// inspect the aggregate metrics.
func ExampleRun() {
	res, err := ancrfid.Run(ancrfid.NewFCAT(2), ancrfid.SimConfig{
		Tags: 1000,
		Runs: 3,
		Seed: 1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("identified %d tags per run\n", res.Runs[0].Identified())
	fmt.Printf("beats the ALOHA bound: %v\n",
		res.Throughput.Mean > ancrfid.AlohaBound(ancrfid.ICodeTiming()))
	// Output:
	// identified 1000 tags per run
	// beats the ALOHA bound: true
}

// Protocols can be constructed from their table names.
func ExampleByName() {
	p, err := ancrfid.ByName("fcat-3")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(p.Name())
	// Output:
	// FCAT-3
}

// The optimal report-probability constant follows the closed form
// (lambda!)^(1/lambda) derived in Section IV-C of the paper.
func ExampleOptimalOmega() {
	for lambda := 2; lambda <= 4; lambda++ {
		fmt.Printf("lambda=%d: omega=%.3f\n", lambda, ancrfid.OptimalOmega(lambda))
	}
	// Output:
	// lambda=2: omega=1.414
	// lambda=3: omega=1.817
	// lambda=4: omega=2.213
}

// Whole-site inventory: plan covering positions, read at each, and union
// the IDs with duplicate removal (the paper's Section II-A workflow).
func ExampleReadInventory() {
	r := ancrfid.NewRNG(7)
	field := ancrfid.RandomField(r, 3000, 100 /* metres */)
	positions := ancrfid.PlanGrid(100, 45)

	report, err := ancrfid.ReadInventory(field, ancrfid.InventoryConfig{
		Protocol:  ancrfid.NewFCAT(2),
		Positions: positions,
		Radius:    45,
		RNG:       r,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("positions: %d\n", len(report.Positions))
	fmt.Printf("coverage: %.0f%%\n", 100*report.Coverage(field))
	fmt.Printf("duplicates removed: %v\n", report.Duplicates > 0)
	// Output:
	// positions: 4
	// coverage: 100%
	// duplicates removed: true
}

// A custom environment gives full control: explicit population, channel
// model and a callback receiving each collected ID.
func ExampleEnv() {
	r := ancrfid.NewRNG(11)
	tags := ancrfid.Population(r, 200)

	collected := 0
	env := &ancrfid.Env{
		RNG:     r,
		Tags:    tags,
		Channel: ancrfid.NewAbstractChannel(ancrfid.AbstractChannelConfig{Lambda: 2}, r),
		Timing:  ancrfid.ICodeTiming(),
		OnIdentified: func(id ancrfid.TagID, viaResolution bool) {
			collected++
		},
	}
	if _, err := ancrfid.NewFCAT(2).Run(env); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("collected %d of %d\n", collected, len(tags))
	// Output:
	// collected 200 of 200
}
