package ancrfid_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/ancrfid/ancrfid"
)

// sessionByName resolves a protocol and asserts it supports sessions.
func sessionByName(t testing.TB, name string) ancrfid.SessionProtocol {
	t.Helper()
	p, err := ancrfid.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	sp, ok := ancrfid.AsSession(p)
	if !ok {
		t.Fatalf("%s does not support sessions", name)
	}
	return sp
}

// TestFleetDegenerateMatchesSingleReader pins the fleet scheduler's
// degenerate case: a one-reader one-zone fleet must reproduce the plain
// single-reader run exactly — same protocol metrics and a byte-identical
// JSONL event stream. This is what entitles every existing golden to stay
// untouched by the fleet layer.
func TestFleetDegenerateMatchesSingleReader(t *testing.T) {
	for _, name := range []string{"FCAT-2", "SCAT-2", "DFSA"} {
		t.Run(name, func(t *testing.T) {
			base := ancrfid.SimConfig{Tags: 200, Seed: 17, PAckLoss: 0.05}

			soloCfg := base
			var soloTrace bytes.Buffer
			soloCfg.Tracer = ancrfid.NewJSONLTracer(&soloTrace)
			p, err := ancrfid.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			soloM, err := ancrfid.RunOnce(p, soloCfg, 0)
			if err != nil {
				t.Fatalf("single-reader run: %v", err)
			}

			fleetCfg := ancrfid.FleetSimConfig{Config: base, Fleet: ancrfid.FleetTopology{Readers: 1, Zones: 1}}
			var fleetTrace bytes.Buffer
			fleetCfg.Tracer = ancrfid.NewJSONLTracer(&fleetTrace)
			rep, err := ancrfid.RunFleetOnce(sessionByName(t, name), fleetCfg, 0)
			if err != nil {
				t.Fatalf("fleet run: %v", err)
			}

			if len(rep.Readers) != 1 {
				t.Fatalf("fleet has %d readers, want 1", len(rep.Readers))
			}
			if got := rep.Readers[0].Metrics; got != soloM {
				t.Errorf("reader 0 metrics diverge from the single-reader run:\nfleet: %+v\nsolo:  %+v", got, soloM)
			}
			if !bytes.Equal(fleetTrace.Bytes(), soloTrace.Bytes()) {
				t.Errorf("JSONL trace diverges from the single-reader run (%d vs %d bytes)",
					fleetTrace.Len(), soloTrace.Len())
			}
			if rep.Identified != soloM.Identified() || !rep.Accounted() {
				t.Errorf("fleet accounting (identified %d, accounted %v) disagrees with solo %d",
					rep.Identified, rep.Accounted(), soloM.Identified())
			}
		})
	}
}

// runFleetInstrumented executes the acceptance scenario — a 4-reader
// 4-zone FCAT-2 fleet campaign with migrating tags — and captures
// everything observable: the campaign result (hashed via %#v), the full
// JSONL trace, and the metrics registry dump.
func runFleetInstrumented(t *testing.T, policy ancrfid.FleetPolicy, campaignWorkers, fleetWorkers int) (string, string, string) {
	t.Helper()
	var trace bytes.Buffer
	jsonl := ancrfid.NewJSONLTracer(&trace)
	reg := ancrfid.NewRegistry()
	res, err := ancrfid.RunFleet(sessionByName(t, "FCAT-2"), ancrfid.FleetSimConfig{
		Config: ancrfid.SimConfig{
			Tags: 60, Runs: 4, Seed: 23, PAckLoss: 0.02,
			Tracer: jsonl, Metrics: reg, Workers: campaignWorkers,
		},
		Fleet: ancrfid.FleetTopology{
			Readers: 4, Zones: 4, Policy: policy, Workers: fleetWorkers,
			Horizon: 300 * time.Millisecond, MigrationRate: 3,
		},
	})
	if err != nil {
		t.Fatalf("policy=%s campaignWorkers=%d fleetWorkers=%d: %v",
			policy.Name(), campaignWorkers, fleetWorkers, err)
	}
	if err := jsonl.Err(); err != nil {
		t.Fatalf("trace write: %v", err)
	}
	var dump strings.Builder
	if _, err := reg.WriteTo(&dump); err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%#v", res), trace.String(), dump.String()
}

// TestFleetCampaignDeterminism is the fleet acceptance test: the 4-reader
// 4-zone FCAT-2 campaign must be bit-identical — result hash, JSONL trace,
// registry dump — across zone-shard worker counts (1 vs 8) and campaign
// worker counts (1 vs 4), under both TDMA and listen-before-talk.
func TestFleetCampaignDeterminism(t *testing.T) {
	for _, policy := range []ancrfid.FleetPolicy{ancrfid.TDMAPolicy(0), ancrfid.LBTPolicy()} {
		t.Run(policy.Name(), func(t *testing.T) {
			t.Parallel()
			refRes, refTrace, refReg := runFleetInstrumented(t, policy, 1, 1)
			if refTrace == "" || !strings.Contains(refReg, "fleet.") {
				t.Fatal("instrumentation vacuous: empty trace or no fleet.* metric families")
			}
			for _, w := range [][2]int{{1, 8}, {4, 1}, {4, 8}} {
				res, trace, reg := runFleetInstrumented(t, policy, w[0], w[1])
				if res != refRes {
					t.Errorf("campaignWorkers=%d fleetWorkers=%d: result differs from sequential", w[0], w[1])
				}
				if trace != refTrace {
					t.Errorf("campaignWorkers=%d fleetWorkers=%d: JSONL trace differs (%d vs %d bytes)",
						w[0], w[1], len(trace), len(refTrace))
				}
				if reg != refReg {
					t.Errorf("campaignWorkers=%d fleetWorkers=%d: registry dump differs", w[0], w[1])
				}
			}
		})
	}
}

// TestFleetCampaignSummaries sanity-checks the campaign aggregation the
// CLI prints: a coordinated migrating fleet identifies tags, migrates
// them, and keeps the fleet-wide accounting total in every run.
func TestFleetCampaignSummaries(t *testing.T) {
	res, err := ancrfid.RunFleet(sessionByName(t, "FCAT-2"), ancrfid.FleetSimConfig{
		Config: ancrfid.SimConfig{Tags: 50, Runs: 3, Seed: 5},
		Fleet: ancrfid.FleetTopology{
			Readers: 4, Zones: 4, Policy: ancrfid.TDMAPolicy(0),
			Horizon: 300 * time.Millisecond, MigrationRate: 2, Workers: 4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "tdma" || len(res.Runs) != 3 {
		t.Fatalf("Policy=%q len(Runs)=%d, want tdma/3", res.Policy, len(res.Runs))
	}
	if res.Identified.Mean <= 0 || res.Throughput.Mean <= 0 {
		t.Errorf("vacuous campaign: identified %.1f, throughput %.1f", res.Identified.Mean, res.Throughput.Mean)
	}
	if res.Migrations.Mean <= 0 {
		t.Error("no migrations despite a migrating workload")
	}
	for i := range res.Runs {
		if !res.Runs[i].Accounted() {
			t.Errorf("run %d: fleet accounting not total", i)
		}
		if res.Runs[i].DupIdents != 0 || res.Runs[i].Phantoms != 0 {
			t.Errorf("run %d: dup idents %d, phantoms %d", i, res.Runs[i].DupIdents, res.Runs[i].Phantoms)
		}
	}
}

// BenchmarkFleetCampaign measures the multi-reader scheduler end to end:
// a 4-reader 4-zone TDMA campaign with intra-run zone sharding. Wired into
// the CI bench gate with a fixed iteration count.
func BenchmarkFleetCampaign(b *testing.B) {
	sp := sessionByName(b, "FCAT-2")
	cfg := ancrfid.FleetSimConfig{
		Config: ancrfid.SimConfig{Tags: 100, Runs: 4, Seed: 3, Workers: 4},
		Fleet:  ancrfid.FleetTopology{Readers: 4, Zones: 4, Policy: ancrfid.TDMAPolicy(0), Workers: 2},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ancrfid.RunFleet(sp, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Identified.Mean <= 0 {
			b.Fatal("vacuous campaign")
		}
	}
}
