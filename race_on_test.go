//go:build race

package ancrfid_test

// raceEnabled reports whether the race detector is compiled in; the
// mega-N streaming smoke test skips under it (5-20x slowdown and memory
// multiplication would dwarf its 10-minute budget).
const raceEnabled = true
