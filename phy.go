package ancrfid

import (
	"github.com/ancrfid/ancrfid/internal/signal"
)

// Physical-layer re-exports for users who want to work with the MSK/ANC
// substrate directly (demodulators, collision-resolution experiments).
type (
	// Waveform is a complex-baseband sample sequence.
	Waveform = signal.Waveform
)

// SamplesPerBit is the default complex-baseband oversampling factor.
const SamplesPerBit = signal.DefaultSamplesPerBit

// ModulateID returns the canonical unit-gain MSK waveform of a tag ID.
func ModulateID(id TagID, samplesPerBit int) Waveform {
	return signal.ModulateID(id, samplesPerBit)
}

// MixWaveforms sums simultaneous transmissions sample-wise, as they
// superimpose at the reader's antenna.
func MixWaveforms(ws ...Waveform) Waveform { return signal.Mix(ws...) }

// ScaleWaveform applies a complex channel gain (attenuation + phase).
func ScaleWaveform(w Waveform, gain complex128) Waveform { return signal.Scale(w, gain) }

// AddNoise adds complex AWGN with the given per-sample standard deviation
// in place and returns the waveform.
func AddNoise(w Waveform, sigma float64, r *RNG) Waveform {
	return signal.AddNoise(w, sigma, r)
}

// ApplyFrequencyOffset rotates a waveform by a per-sample phase increment,
// modelling the carrier-frequency offset of a tag's oscillator.
func ApplyFrequencyOffset(w Waveform, radPerSample float64) Waveform {
	return signal.ApplyFrequencyOffset(w, radPerSample)
}

// DecodeWaveform demodulates a 96-bit MSK waveform and reports whether the
// embedded CRC verifies.
func DecodeWaveform(w Waveform, samplesPerBit int) (TagID, bool) {
	return signal.DecodeID(w, samplesPerBit)
}

// EnvelopeFlat reports whether a waveform has the constant envelope of a
// single MSK transmission; readers use it to reject capture-effect decodes
// of collided slots.
func EnvelopeFlat(w Waveform, noiseSigma float64) bool {
	return signal.EnvelopeFlat(w, noiseSigma)
}

// EstimateGains jointly least-squares-fits the complex gains of reference
// waveforms inside a mixed recording — the cancellation step of analog
// network coding.
func EstimateGains(mixed Waveform, refs []Waveform) []complex128 {
	return signal.EstimateGains(mixed, refs)
}

// CancelWaveforms subtracts gain-weighted references from a mixed recording
// and returns the residual.
func CancelWaveforms(mixed Waveform, refs []Waveform, gains []complex128) Waveform {
	return signal.Cancel(mixed, refs, gains)
}

// EstimateTwoAmplitudes recovers the two constituent amplitudes of a
// two-signal MSK mix from its energy statistics (the estimator of Katti et
// al. the paper builds on).
func EstimateTwoAmplitudes(mixed Waveform) (a, b float64, ok bool) {
	return signal.EstimateTwoAmplitudes(mixed)
}
